"""The Last Seen impression construction (paper Figure 3).

"Scientific observations have a strong temporal component.  It is
often more important to retain recent tuples than ones that have been
investigated several times already. ... instead of picking a tuple
with probability n/(cnt+1), we use the fixed probability k/D, where D
can be tuned to be close to the expected daily ingest of new tuples,
and k = n if only new tuples are desired, or k < n for a ratio of k/n
new tuples in the sample.  In such a strategy, older tuples have a
bigger chance of being thrown out from the reservoir" (paper §3.3).

With a constant acceptance probability the occupancy of a tuple decays
geometrically with its age (in accepted-tuples units), so the reservoir
is exponentially recency-weighted — the property the Last Seen
benchmark (E7) measures as the fraction of the sample drawn from the
most recent ingest of ``D`` tuples.
"""

from __future__ import annotations

from typing import Mapping, Optional

import numpy as np

from repro.errors import SamplingError
from repro.sampling.base import ReservoirBase
from repro.util.rng import RandomSource


class LastSeenReservoir(ReservoirBase):
    """Reservoir with fixed acceptance probability ``k/D``.

    Parameters
    ----------
    capacity:
        n, the impression size.
    daily_ingest:
        D, the expected number of tuples per incremental load.
    keep:
        k ≤ n.  ``k = n`` (the default) chases only new tuples; a
        smaller k targets a steady-state ratio of roughly ``k/n``
        recent tuples in the sample.
    """

    def __init__(
        self,
        capacity: int,
        daily_ingest: int,
        keep: int | None = None,
        rng: RandomSource = None,
    ) -> None:
        super().__init__(capacity, rng)
        if daily_ingest <= 0:
            raise SamplingError(
                f"daily_ingest must be positive, got {daily_ingest}"
            )
        keep = capacity if keep is None else int(keep)
        if not 0 < keep <= capacity:
            raise SamplingError(
                f"keep must be in (0, capacity={capacity}], got {keep}"
            )
        self.daily_ingest = int(daily_ingest)
        self.keep = keep

    @property
    def acceptance_rate(self) -> float:
        """The fixed per-tuple acceptance probability k/D (≤ 1)."""
        return min(1.0, self.keep / self.daily_ingest)

    def acceptance_probabilities(
        self,
        row_ids: np.ndarray,
        batch: Optional[Mapping[str, np.ndarray]],
        counts_after: np.ndarray,
    ) -> np.ndarray:
        """Constant ``k/D`` regardless of how much has been seen."""
        return np.full(row_ids.shape[0], self.acceptance_rate)

    def expected_recent_fraction(self, window: int | None = None) -> float:
        """Expected fraction of slots holding tuples from the last
        ``window`` ingested tuples (default: one daily ingest D).

        Each of the last ``w`` tuples is accepted with probability
        ``k/D`` and survives each of the subsequent accepts with
        probability ``1 − 1/n``; summing the geometric series gives
        the closed form the E7 benchmark checks against measurements:

        ``E[recent slots] = n·(1 − (1 − k/(D·n))^w) ≈ k·w/D`` for
        small ``w·k/(D·n)``.
        """
        w = self.daily_ingest if window is None else int(window)
        p = self.acceptance_rate
        n = self.capacity
        expected_slots = n * (1.0 - (1.0 - p / n) ** w)
        return min(1.0, expected_slots / n)
