"""Join synopses: FK-consistent sampling across tables (ref [3]).

"Impressions do not contain just a single attribute or relation, but
may span the entire database logical schema. ... Past work
demonstrates how join attributes across relations are achieved with
uniform sampling, and it can be adjusted to our case, too.  This way,
the correlations between join attributes are maintained, leading to
more precise query results" (paper §3.1).

Following Acharya et al.'s join synopses, the *fact* table is sampled
(by any of this package's samplers) and every dimension table
referenced by a declared foreign key contributes exactly the rows the
sampled fact tuples point at.  A query with FK joins then evaluates on
the synopsis with zero dangling tuples — the join is lossless within
the sample.

The paper adds an incremental twist: "these traditional sampling
techniques have to be adapted to wait for the joining tuples to arrive
during subsequent loads" (§3.3).  :meth:`JoinSynopsis.refresh` handles
exactly that: fact tuples whose dimension row had not arrived yet are
kept in a pending set and re-resolved on every refresh.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.columnstore.catalog import Catalog
from repro.columnstore.table import Table
from repro.errors import ImpressionError


class JoinSynopsis:
    """A FK-consistent bundle of sampled fact rows + dimension rows.

    Parameters
    ----------
    catalog:
        Source of the base fact and dimension tables and FK metadata.
    fact_table:
        Name of the fact table the sampler runs over.
    """

    def __init__(self, catalog: Catalog, fact_table: str) -> None:
        self.catalog = catalog
        self.fact_table = fact_table
        self.foreign_keys = catalog.foreign_keys_of(fact_table)
        self._fact_row_ids = np.empty(0, dtype=np.int64)
        self._dimension_rows: Dict[str, np.ndarray] = {}
        self._pending: Dict[str, np.ndarray] = {}

    # ------------------------------------------------------------------
    def refresh(self, fact_row_ids: np.ndarray) -> None:
        """Rebuild the synopsis for the given sampled fact rows.

        For every FK, the dimension rows matching the sampled facts'
        key values are located; keys with no dimension row yet (they
        may arrive "during subsequent loads") are recorded as pending
        and picked up by the next refresh.
        """
        self._fact_row_ids = np.asarray(fact_row_ids, dtype=np.int64)
        fact = self.catalog.table(self.fact_table)
        if self._fact_row_ids.size and self._fact_row_ids.max() >= fact.num_rows:
            raise ImpressionError(
                "sampled fact row ids exceed the fact table's row count"
            )
        self._dimension_rows.clear()
        self._pending.clear()
        for fk in self.foreign_keys:
            keys = fact[fk.fact_column][self._fact_row_ids]
            unique_keys = np.unique(keys)
            dimension = self.catalog.table(fk.dimension_table)
            dim_keys = dimension[fk.dimension_column]
            order = np.argsort(dim_keys, kind="stable")
            sorted_keys = dim_keys[order]
            pos = np.searchsorted(sorted_keys, unique_keys, side="left")
            pos_clipped = np.minimum(pos, sorted_keys.shape[0] - 1)
            found = (
                (sorted_keys.shape[0] > 0)
                & (pos < sorted_keys.shape[0])
                & (sorted_keys[pos_clipped] == unique_keys)
            )
            self._dimension_rows[fk.dimension_table] = np.sort(
                order[pos_clipped[found]]
            )
            self._pending[fk.dimension_table] = unique_keys[~found]

    # ------------------------------------------------------------------
    @property
    def fact_row_ids(self) -> np.ndarray:
        """The sampled fact rows this synopsis is built around."""
        return self._fact_row_ids.copy()

    def dimension_row_ids(self, dimension_table: str) -> np.ndarray:
        """Dimension rows included for ``dimension_table``."""
        try:
            return self._dimension_rows[dimension_table].copy()
        except KeyError:
            raise ImpressionError(
                f"{dimension_table!r} is not a dimension of {self.fact_table!r}"
            ) from None

    def pending_keys(self, dimension_table: str) -> np.ndarray:
        """FK values still waiting for their dimension row to arrive."""
        try:
            return self._pending[dimension_table].copy()
        except KeyError:
            raise ImpressionError(
                f"{dimension_table!r} is not a dimension of {self.fact_table!r}"
            ) from None

    @property
    def has_pending(self) -> bool:
        """Whether any FK value is still unresolved."""
        return any(keys.size for keys in self._pending.values())

    def materialise(self) -> Dict[str, Table]:
        """Concrete sampled tables: the fact sample + trimmed dimensions.

        Table names are preserved so a query's :class:`JoinSpec`s work
        unchanged against a catalog built from this dict.
        """
        fact = self.catalog.table(self.fact_table)
        out: Dict[str, Table] = {
            self.fact_table: fact.take(self._fact_row_ids, self.fact_table)
        }
        for fk in self.foreign_keys:
            dimension = self.catalog.table(fk.dimension_table)
            out[fk.dimension_table] = dimension.take(
                self._dimension_rows.get(
                    fk.dimension_table, np.empty(0, dtype=np.int64)
                ),
                fk.dimension_table,
            )
        return out

    def to_catalog(self) -> Catalog:
        """A self-contained catalog of the synopsis tables + FKs."""
        synopsis_catalog = Catalog()
        for table in self.materialise().values():
            synopsis_catalog.add_table(table)
        for fk in self.foreign_keys:
            synopsis_catalog.add_foreign_key(fk)
        return synopsis_catalog

    def size_rows(self) -> int:
        """Total rows across the fact sample and all dimension subsets."""
        return int(
            self._fact_row_ids.shape[0]
            + sum(rows.shape[0] for rows in self._dimension_rows.values())
        )
