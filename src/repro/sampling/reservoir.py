"""Algorithm R — the classic uniform reservoir (paper Figure 2).

"Reservoir algorithms have a) a fixed capacity of tuples that can fit
in the sample, b) process the data sequentially, and c) each tuple has
the same probability of being part of the sample" (paper §3.3, citing
Vitter 1985).  The acceptance probability for the ``cnt``-th tuple is
``n / cnt``, and the resulting sample is a uniform simple random
sample of everything seen — the property the uniform panels of
Figure 7 and all SRS estimators rest on.
"""

from __future__ import annotations

from typing import Mapping, Optional

import numpy as np

from repro.sampling.base import ReservoirBase


class ReservoirR(ReservoirBase):
    """Vitter's Algorithm R over a stream of row ids.

    The vectorised implementation accepts the ``cnt``-th tuple with
    probability ``n/cnt`` and evicts a uniformly random occupant,
    which is exactly Figure 2 (there the single random draw doubles as
    the eviction slot; conditioned on acceptance it is uniform over
    slots, so the two formulations are the same distribution).
    """

    def acceptance_probabilities(
        self,
        row_ids: np.ndarray,
        batch: Optional[Mapping[str, np.ndarray]],
        counts_after: np.ndarray,
    ) -> np.ndarray:
        """``P(accept the cnt-th tuple) = n / cnt``."""
        return self.capacity / counts_after.astype(np.float64)

    def inclusion_probabilities(self) -> np.ndarray:
        """Exact uniform inclusion probability ``min(1, n/cnt)``.

        Every tuple ever offered has the same chance of being in the
        reservoir, which is the defining invariant of Algorithm R, so
        the survival-product bookkeeping of the base class is replaced
        with the closed form.
        """
        if self.size == 0:
            return np.empty(0)
        pi = min(1.0, self.capacity / max(self.seen, 1))
        return np.full(self.size, pi)
