"""Extrema reservoir — the paper's "outliers" impression policy.

"Others may be interested in the outliers, i.e., peaks or troughs of
the data instead of average values" (paper §1).  This sampler keeps
the ``capacity/2`` smallest and ``capacity/2`` largest values of one
attribute seen so far, so MIN/MAX (and top-k) queries on that
attribute are answered *exactly* from the impression — the one
aggregate family ordinary random samples cannot bound.
"""

from __future__ import annotations

import heapq
from typing import Mapping

import numpy as np

from repro.errors import SamplingError


class ExtremaReservoir:
    """Keeps the extreme values of one attribute from a stream.

    Parameters
    ----------
    capacity:
        Total slots, split evenly between troughs (smallest values)
        and peaks (largest values).
    attribute:
        The column whose extremes are tracked.
    """

    def __init__(self, capacity: int, attribute: str) -> None:
        if capacity < 2:
            raise SamplingError(f"capacity must be at least 2, got {capacity}")
        self.capacity = int(capacity)
        self.attribute = attribute
        self._half = self.capacity // 2
        # troughs: max-heap via negated values; peaks: min-heap.
        self._troughs: list[tuple[float, int]] = []
        self._peaks: list[tuple[float, int]] = []
        self._seen = 0

    def offer_batch(
        self, row_ids: np.ndarray, batch: Mapping[str, np.ndarray]
    ) -> int:
        """Stream a batch; returns how many slots changed occupant."""
        if self.attribute not in batch:
            raise SamplingError(
                f"batch is missing tracked attribute {self.attribute!r}"
            )
        row_ids = np.asarray(row_ids, dtype=np.int64)
        values = np.asarray(batch[self.attribute], dtype=float)
        if row_ids.shape != values.shape:
            raise SamplingError("row_ids and attribute values must align")
        self._seen += row_ids.shape[0]
        changed = 0
        for value, row_id in zip(values, row_ids):
            if len(self._troughs) < self._half:
                heapq.heappush(self._troughs, (-value, int(row_id)))
                changed += 1
            elif -value > self._troughs[0][0]:
                heapq.heapreplace(self._troughs, (-value, int(row_id)))
                changed += 1
            if len(self._peaks) < self.capacity - self._half:
                heapq.heappush(self._peaks, (value, int(row_id)))
                changed += 1
            elif value > self._peaks[0][0]:
                heapq.heapreplace(self._peaks, (value, int(row_id)))
                changed += 1
        return changed

    # ------------------------------------------------------------------
    @property
    def seen(self) -> int:
        """Total tuples offered."""
        return self._seen

    @property
    def size(self) -> int:
        """Slots currently occupied."""
        return len(self._troughs) + len(self._peaks)

    @property
    def row_ids(self) -> np.ndarray:
        """Row ids of the retained extremes (troughs then peaks)."""
        ids = [row_id for _, row_id in self._troughs]
        ids.extend(row_id for _, row_id in self._peaks)
        return np.asarray(ids, dtype=np.int64)

    @property
    def minimum(self) -> float:
        """The exact stream minimum of the tracked attribute."""
        if not self._troughs:
            raise SamplingError("no values seen yet")
        return -max(self._troughs)[0]

    @property
    def maximum(self) -> float:
        """The exact stream maximum of the tracked attribute."""
        if not self._peaks:
            raise SamplingError("no values seen yet")
        return max(self._peaks)[0]

    def __len__(self) -> int:
        return self.size
