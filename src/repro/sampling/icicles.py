"""Self-tuning samples à la ICICLES (Ganti et al., VLDB 2000, ref [7]).

"Self-tuning samples were proposed by ICICLES.  The results of a
query are regarded as newly ingested data, and the sample is updated
accordingly.  We intend to investigate this technique for SciBORQ
also: a side-effect of a query evaluation is to update an impression
using query results" (paper §5).

The :class:`SelfTuningReservoir` realises that plan: besides the load
stream, it accepts *result* offers — the base-row ids a query's answer
touched.  Every offer is a fresh inclusion chance, so a tuple touched
by many queries is proportionally more likely to be retained; the
sample drifts toward the workload's working set without any explicit
interest model.  Compared to the Figure-6 biased reservoir this is
reactive (tuples must appear in results first) but free of histogram
state — the trade ICICLES makes.

Inclusion probabilities: with ``o_t`` total offers of tuple ``t`` out
of ``O`` offers overall, the retention behaviour approximates a
weighted reservoir with weight ``o_t``, so ``π_t ≈ min(1, n·o_t/O)``
— the same normalised approximation used for A-Res, validated
empirically in the tests.
"""

from __future__ import annotations

import threading
from collections import defaultdict
from typing import Dict

import numpy as np

from repro.errors import SamplingError
from repro.util.rng import RandomSource, ensure_rng


class SelfTuningReservoir:
    """A reservoir that treats query results as re-ingested data.

    Parameters
    ----------
    capacity:
        n, the number of slots.
    result_boost:
        How many load-offers one result-offer is worth.  1.0 treats a
        query touch exactly like a fresh ingest (the ICICLES default);
        higher values tune faster toward the workload.
    """

    def __init__(
        self,
        capacity: int,
        result_boost: float = 1.0,
        rng: RandomSource = None,
    ) -> None:
        if capacity <= 0:
            raise SamplingError(f"capacity must be positive, got {capacity}")
        if result_boost <= 0:
            raise SamplingError(
                f"result_boost must be positive, got {result_boost}"
            )
        self.capacity = int(capacity)
        self.result_boost = float(result_boost)
        self.rng = ensure_rng(rng)
        self._slots = np.full(self.capacity, -1, dtype=np.int64)
        self._filled = 0
        self._offer_weight: Dict[int, float] = defaultdict(float)
        self._total_weight = 0.0
        self._seen = 0
        self._result_offers = 0
        # offer_results arrives from concurrent query threads (the
        # server's exact path); offers must not interleave mid-update.
        self._offer_lock = threading.Lock()

    # ------------------------------------------------------------------
    def _offer(self, row_ids: np.ndarray, weight: float) -> int:
        with self._offer_lock:
            return self._offer_locked(row_ids, weight)

    def _offer_locked(self, row_ids: np.ndarray, weight: float) -> int:
        accepted = 0
        for row_id in row_ids:
            self._offer_weight[int(row_id)] += weight
            self._total_weight += weight
            if self._filled < self.capacity:
                self._slots[self._filled] = row_id
                self._filled += 1
                accepted += 1
                continue
            # accept with probability n·w / W (reservoir over the
            # weighted union stream), evicting a uniform occupant
            p = self.capacity * weight / self._total_weight
            if self.rng.random() < p:
                slot = int(self.rng.integers(0, self.capacity))
                self._slots[slot] = row_id
                accepted += 1
        return accepted

    def offer_batch(self, row_ids: np.ndarray) -> int:
        """Offer freshly loaded tuples (weight 1 each)."""
        row_ids = np.asarray(row_ids, dtype=np.int64)
        with self._offer_lock:
            self._seen += row_ids.shape[0]
            return self._offer_locked(row_ids, 1.0)

    def offer_results(self, row_ids: np.ndarray) -> int:
        """Offer the base rows a query's result touched.

        This is the ICICLES move: result tuples get another inclusion
        chance, weighted by ``result_boost``.
        """
        row_ids = np.asarray(row_ids, dtype=np.int64)
        with self._offer_lock:
            self._result_offers += row_ids.shape[0]
            return self._offer_locked(row_ids, self.result_boost)

    # ------------------------------------------------------------------
    @property
    def seen(self) -> int:
        """Tuples offered through the load path."""
        return self._seen

    @property
    def result_offers(self) -> int:
        """Tuples offered through the query-result path."""
        return self._result_offers

    @property
    def size(self) -> int:
        """Occupied slots."""
        return self._filled

    @property
    def row_ids(self) -> np.ndarray:
        """Current occupants (a copy)."""
        return self._slots[: self._filled].copy()

    def inclusion_probabilities(self) -> np.ndarray:
        """Approximate π per occupant: ``min(1, n·o_t/O)``."""
        if self._filled == 0:
            return np.empty(0)
        weights = np.array(
            [self._offer_weight[int(r)] for r in self._slots[: self._filled]]
        )
        if self._total_weight <= 0:
            return np.full(self._filled, 1.0)
        return np.clip(
            self.capacity * weights / self._total_weight, 1e-12, 1.0
        )

    def touch_weight(self, row_id: int) -> float:
        """Total offer weight accumulated by one base row."""
        return self._offer_weight.get(int(row_id), 0.0)

    def __len__(self) -> int:
        return self._filled
