"""Efraimidis–Spirakis A-Res weighted reservoir (literature baseline).

The paper positions its biased reservoir against "traditional sampling
techniques" (§5).  A-Res is the standard one-pass weighted
reservoir-without-replacement: each item draws a key
``u^(1/w)`` (u uniform) and the n largest keys are kept.  It serves as
the comparison point for the Figure-6 algorithm in the E12 benchmark:
same weights in, similar focal concentration out, but A-Res has no
notion of a *shifting* workload — its weights are fixed at offer time,
while the SciBORQ reservoir re-reads the interest model as it drifts.
"""

from __future__ import annotations

import heapq
from typing import Mapping, Optional

import numpy as np

from repro.errors import SamplingError
from repro.util.rng import RandomSource, ensure_rng


class WeightedReservoir:
    """A-Res: weighted sampling without replacement over a stream.

    Keeps the ``capacity`` items with the largest ``u_i^(1/w_i)``
    keys.  Inclusion probabilities have no closed form; the standard
    normalised approximation ``π_i ≈ min(1, n·w_i / Σw)`` is provided
    for estimator use and validated empirically in the tests.
    """

    def __init__(self, capacity: int, rng: RandomSource = None) -> None:
        if capacity <= 0:
            raise SamplingError(f"capacity must be positive, got {capacity}")
        self.capacity = int(capacity)
        self.rng = ensure_rng(rng)
        self._heap: list[tuple[float, int, float]] = []  # (key, row_id, weight)
        self._seen = 0
        self._total_weight = 0.0

    def offer_batch(
        self,
        row_ids: np.ndarray,
        weights: np.ndarray,
        batch: Optional[Mapping[str, np.ndarray]] = None,
    ) -> int:
        """Stream a batch of (row id, weight) pairs; returns accepts."""
        row_ids = np.asarray(row_ids, dtype=np.int64)
        weights = np.asarray(weights, dtype=float)
        if row_ids.shape != weights.shape:
            raise SamplingError("row_ids and weights must align")
        if np.any(weights < 0):
            raise SamplingError("weights must be non-negative")
        self._seen += row_ids.shape[0]
        self._total_weight += float(weights.sum())
        live = weights > 0
        if not live.any():
            return 0
        keys = self.rng.random(int(live.sum())) ** (1.0 / weights[live])
        accepted = 0
        for key, row_id, weight in zip(keys, row_ids[live], weights[live]):
            if len(self._heap) < self.capacity:
                heapq.heappush(self._heap, (key, int(row_id), float(weight)))
                accepted += 1
            elif key > self._heap[0][0]:
                heapq.heapreplace(self._heap, (key, int(row_id), float(weight)))
                accepted += 1
        return accepted

    # ------------------------------------------------------------------
    @property
    def seen(self) -> int:
        """Total tuples offered."""
        return self._seen

    @property
    def size(self) -> int:
        """Tuples currently held."""
        return len(self._heap)

    @property
    def row_ids(self) -> np.ndarray:
        """Row ids of the current occupants."""
        return np.array([row_id for _, row_id, _ in self._heap], dtype=np.int64)

    @property
    def weights(self) -> np.ndarray:
        """Offer-time weights of the current occupants."""
        return np.array([w for _, _, w in self._heap], dtype=float)

    def inclusion_probabilities(self) -> np.ndarray:
        """Approximate ``π_i ≈ min(1, n·w_i/Σw)`` for the occupants."""
        if not self._heap:
            return np.empty(0)
        if self._total_weight <= 0:
            return np.full(len(self._heap), 1.0)
        pis = self.capacity * self.weights / self._total_weight
        return np.clip(pis, 1e-12, 1.0)

    def __len__(self) -> int:
        return len(self._heap)
