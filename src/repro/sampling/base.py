"""Shared machinery for reservoir-style samplers.

All of the paper's construction algorithms share the reservoir shape
(paper §3.3): a fixed capacity of ``n`` slots, sequential processing,
and eviction of an existing occupant to admit a newcomer.  They differ
only in the per-tuple acceptance probability.  This base class owns
the slots, the accept bookkeeping, and the inclusion-probability
accounting that the Horvitz–Thompson estimators need; subclasses
supply :meth:`acceptance_probabilities`.

Inclusion probabilities
-----------------------
A tuple accepted with probability ``p`` must survive every later
offer: at each subsequent stream position ``j`` the reservoir evicts
any given occupant with probability ``p_j / n`` (the newcomer is
accepted with probability ``p_j`` and evicts a uniformly random slot,
per the paper: "another randomly chosen one is thrown out").  Since
the sampler computes every ``p_j`` anyway, it integrates the *expected
churn* ``C = Σ_j p_j / n`` online and stamps each occupant with the
integral at its insertion, giving the marginal inclusion probability

``π = p · exp(−(C_now − C_at_insert))``.

This is exact in expectation for any acceptance schedule and —
crucially — gives identical π to tuples of identical acceptance
profile regardless of *when* they were accepted, which keeps
Horvitz–Thompson variance estimates tight.  For Algorithm R it
reduces to the classical ``n/cnt`` (``p = n/c`` and
``C_now − C_at = ln(cnt/c)``), which
:class:`repro.sampling.reservoir.ReservoirR` reports in closed form.
"""

from __future__ import annotations

from typing import Mapping, Optional

import numpy as np

from repro.errors import SamplingError
from repro.util.rng import RandomSource, ensure_rng


class ReservoirBase:
    """Fixed-capacity reservoir over base-table row ids.

    The sampler never stores tuple values — only row ids and
    statistical metadata — so one sampler design serves tables of any
    schema.  Materialising the sampled rows is the impression's job.

    Parameters
    ----------
    capacity:
        n, the number of slots.
    rng:
        Seed or generator for all stochastic choices.
    """

    def __init__(self, capacity: int, rng: RandomSource = None) -> None:
        if capacity <= 0:
            raise SamplingError(f"capacity must be positive, got {capacity}")
        self.capacity = int(capacity)
        self.rng = ensure_rng(rng)
        self._row_ids = np.full(self.capacity, -1, dtype=np.int64)
        self._accept_prob = np.ones(self.capacity, dtype=np.float64)
        self._accept_seq = np.zeros(self.capacity, dtype=np.int64)
        self._offer_cnt = np.zeros(self.capacity, dtype=np.int64)
        self._churn_at = np.zeros(self.capacity, dtype=np.float64)
        self._churn_total = 0.0
        self._filled = 0
        self._seen = 0
        self._accepts = 0

    # ------------------------------------------------------------------
    # the subclass hook
    # ------------------------------------------------------------------
    def acceptance_probabilities(
        self,
        row_ids: np.ndarray,
        batch: Optional[Mapping[str, np.ndarray]],
        counts_after: np.ndarray,
    ) -> np.ndarray:
        """Per-tuple acceptance probability for a batch.

        ``counts_after[i]`` is the value of the paper's ``cnt`` when
        tuple ``i`` is considered (i.e. tuples seen so far including
        tuple ``i``).  ``batch`` carries the column values for
        samplers that need them (the biased reservoir); Algorithm R
        and Last Seen ignore it.
        """
        raise NotImplementedError

    # ------------------------------------------------------------------
    # ingestion
    # ------------------------------------------------------------------
    def offer_batch(
        self,
        row_ids: np.ndarray,
        batch: Optional[Mapping[str, np.ndarray]] = None,
    ) -> int:
        """Stream a batch of tuples through the reservoir.

        Returns the number of tuples accepted.  Acceptance tests are
        vectorised; only the (rare) accepted tuples take the Python
        path that picks an eviction slot.
        """
        row_ids = np.asarray(row_ids, dtype=np.int64)
        if row_ids.ndim != 1:
            raise SamplingError("row_ids must be one-dimensional")
        count = row_ids.shape[0]
        if count == 0:
            return 0
        start = 0
        accepted = 0
        # Phase 1: initial fill ("populate the sample with the first n
        # tuples" — every construction figure starts this way).
        if self._filled < self.capacity:
            take = min(self.capacity - self._filled, count)
            self._row_ids[self._filled : self._filled + take] = row_ids[:take]
            self._accept_prob[self._filled : self._filled + take] = 1.0
            self._accept_seq[self._filled : self._filled + take] = self._accepts
            self._offer_cnt[self._filled : self._filled + take] = self._seen + 1 + np.arange(take)
            self._churn_at[self._filled : self._filled + take] = self._churn_total
            self._filled += take
            self._seen += take
            start = take
            accepted += take
            if start == count:
                return accepted
        # Phase 2: probabilistic replacement.
        tail_ids = row_ids[start:]
        tail_batch = (
            {k: np.asarray(v)[start:] for k, v in batch.items()}
            if batch is not None
            else None
        )
        counts_after = self._seen + 1 + np.arange(tail_ids.shape[0], dtype=np.int64)
        probs = np.clip(
            self.acceptance_probabilities(tail_ids, tail_batch, counts_after),
            0.0,
            1.0,
        )
        draws = self.rng.random(tail_ids.shape[0])
        hits = np.flatnonzero(draws < probs)
        slots = self.rng.integers(0, self.capacity, size=hits.shape[0])
        churn_after = self._churn_total + np.cumsum(probs) / self.capacity
        for hit, slot in zip(hits, slots):
            self._accepts += 1
            self._row_ids[slot] = tail_ids[hit]
            self._accept_prob[slot] = probs[hit]
            self._accept_seq[slot] = self._accepts
            self._offer_cnt[slot] = counts_after[hit]
            self._churn_at[slot] = churn_after[hit]
        if probs.shape[0]:
            self._churn_total = float(churn_after[-1])
        accepted += hits.shape[0]
        self._seen += tail_ids.shape[0]
        return accepted

    def load_state(
        self,
        row_ids: np.ndarray,
        inclusion_probs: np.ndarray,
        seen: int,
    ) -> None:
        """Install an externally-constructed sample as reservoir state.

        Used by maintenance when a layer is rebuilt from static data
        with an exact design (πps, see :mod:`repro.sampling.pps`): the
        provided inclusion probabilities become the occupants'
        ``accept_prob`` with zero accumulated churn, so subsequent
        *streaming* offers decay them correctly through the ordinary
        expected-churn bookkeeping.
        """
        row_ids = np.asarray(row_ids, dtype=np.int64)
        inclusion_probs = np.asarray(inclusion_probs, dtype=float)
        if row_ids.shape != inclusion_probs.shape:
            raise SamplingError("row_ids and inclusion_probs must align")
        if row_ids.shape[0] > self.capacity:
            raise SamplingError(
                f"cannot load {row_ids.shape[0]} rows into capacity "
                f"{self.capacity}"
            )
        count = row_ids.shape[0]
        self._row_ids[:count] = row_ids
        self._accept_prob[:count] = np.clip(inclusion_probs, 1e-12, 1.0)
        self._accept_seq[:count] = 0
        self._offer_cnt[:count] = max(int(seen), 1)
        self._churn_at[:count] = 0.0
        self._churn_total = 0.0
        self._filled = count
        self._seen = int(seen)
        self._accepts = 0

    # ------------------------------------------------------------------
    # state
    # ------------------------------------------------------------------
    @property
    def seen(self) -> int:
        """Total tuples offered (the paper's ``cnt``)."""
        return self._seen

    @property
    def accepts(self) -> int:
        """Total replacement accepts since the initial fill."""
        return self._accepts

    @property
    def size(self) -> int:
        """Tuples currently held (< capacity only before first fill)."""
        return self._filled

    @property
    def row_ids(self) -> np.ndarray:
        """Base-table row ids of the current occupants (a copy)."""
        return self._row_ids[: self._filled].copy()

    def inclusion_probabilities(self) -> np.ndarray:
        """Marginal π per occupant via the expected-churn integral.

        ``π = p · exp(−(C_now − C_at_insert))`` — see the module
        docstring.  Exact-in-expectation for every acceptance
        schedule; unbiasedness of the resulting Horvitz–Thompson
        estimates is validated empirically in the test-suite.
        """
        if self._filled == 0:
            return np.empty(0)
        decay = np.exp(
            -(self._churn_total - self._churn_at[: self._filled])
        )
        return np.clip(
            self._accept_prob[: self._filled] * decay, 1e-12, 1.0
        )

    def __len__(self) -> int:
        return self._filled

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(capacity={self.capacity}, "
            f"seen={self._seen}, accepts={self._accepts})"
        )
