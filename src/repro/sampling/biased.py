"""The biased-sampling reservoir (paper Figure 6).

The acceptance probability of tuple ``t`` is

``P(accept t) = f̆(t) · N · n / cnt``

"where N is the size of the observed predicate set, n the size of the
desired impression, and cnt the number of tuples in the database"
(paper §4).  ``f̆(t)·N`` estimates how often the workload has asked
about values like ``t``'s, so frequently requested regions are
over-represented and the impression concentrates around the focal
points — the purple panels of Figure 7.

The product can exceed one for sharply peaked interest; we cap at 1
(DESIGN.md §5).  Capping only saturates the bias: the focal tuples are
then all but guaranteed admission, which is the intent.
"""

from __future__ import annotations

from typing import Callable, Mapping, Optional

import numpy as np

from repro.errors import SamplingError
from repro.sampling.base import ReservoirBase
from repro.util.rng import RandomSource

#: A function mapping a column-wise batch to per-tuple interest mass
#: ``f̆(t) · N`` — supplied by :class:`repro.workload.interest.InterestModel`.
MassFunction = Callable[[Mapping[str, np.ndarray]], np.ndarray]


class BiasedReservoir(ReservoirBase):
    """Reservoir whose acceptance follows the workload-interest density.

    Parameters
    ----------
    capacity:
        n, the impression size.
    mass_fn:
        Callable returning ``f̆(t)·N`` per tuple of a batch.  The
        indirection (rather than holding the interest model directly)
        keeps this module free of workload dependencies and lets tests
        drive the sampler with synthetic masses.
    uniform_floor:
        A lower bound on acceptance probability expressed as a
        multiple of Algorithm R's ``n/cnt``.  The default ``0`` is the
        paper's algorithm verbatim; a small positive floor (e.g. 0.1)
        guarantees residual coverage *outside* the focal areas so that
        out-of-focus queries keep finite error bounds — the trade-off
        §4 describes ("the confidence of queries that span widely
        outside of these areas is lower").
    """

    def __init__(
        self,
        capacity: int,
        mass_fn: MassFunction,
        uniform_floor: float = 0.0,
        rng: RandomSource = None,
    ) -> None:
        super().__init__(capacity, rng)
        if not callable(mass_fn):
            raise SamplingError("mass_fn must be callable")
        if uniform_floor < 0:
            raise SamplingError(
                f"uniform_floor must be non-negative, got {uniform_floor}"
            )
        self.mass_fn = mass_fn
        self.uniform_floor = float(uniform_floor)
        self._mass_sum = 0.0
        self._mass_count = 0

    def acceptance_probabilities(
        self,
        row_ids: np.ndarray,
        batch: Optional[Mapping[str, np.ndarray]],
        counts_after: np.ndarray,
    ) -> np.ndarray:
        """``min(1, max(f̆(t)·N, floor) · n / cnt)`` per tuple."""
        if batch is None:
            raise SamplingError(
                "BiasedReservoir needs column values to compute interest mass"
            )
        mass = np.asarray(self.mass_fn(batch), dtype=float)
        if mass.shape[0] != row_ids.shape[0]:
            raise SamplingError(
                f"mass_fn returned {mass.shape[0]} weights for "
                f"{row_ids.shape[0]} tuples"
            )
        if np.any(mass < 0):
            raise SamplingError("interest mass must be non-negative")
        if self.uniform_floor > 0.0:
            mass = np.maximum(mass, self.uniform_floor)
        self._mass_sum += float(mass.sum())
        self._mass_count += int(mass.shape[0])
        return mass * self.capacity / counts_after.astype(np.float64)

    @property
    def mean_mass(self) -> float:
        """Average interest mass over all tuples offered so far (m̄).

        Diagnostic: masses are reported relative to this mean by the
        engine examples.  Inclusion probabilities come from the base
        class's expected-churn integral, which needs no mass summary.
        """
        if self._mass_count == 0:
            return 1.0
        return self._mass_sum / self._mass_count
