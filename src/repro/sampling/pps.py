"""Fixed-size πps sampling (probability proportional to size).

The Figure-6 reservoir is the right tool while tuples *stream* in with
unknown totals.  When an impression is rebuilt from an already-loaded
base table (the Figure-7 setup: apply freshly-learned bias to static
data), the totals are known, and classical survey-sampling theory
offers a strictly better construction: a systematic πps sample with
inclusion probabilities *exactly* proportional to the interest mass
(capped at 1), fixed sample size, and zero eviction churn.  The
Horvitz–Thompson machinery then runs on exact πs, which is what makes
the paper's "tighter error bounds inside the focal areas" claim land
(benchmark E3).

The capping iteration is the standard πps normalisation: items whose
scaled mass exceeds 1 are taken with certainty and the remainder is
rescaled, repeating until feasible.  Selection is Madow's systematic
procedure over a random permutation, which realises the πs exactly
with a fixed sample size.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import SamplingError
from repro.util.rng import RandomSource, ensure_rng


def pps_inclusion_probabilities(masses: np.ndarray, n: int) -> np.ndarray:
    """Exact πps inclusion probabilities: ``π_i = min(1, λ·m_i)``.

    ``λ`` is chosen so that ``Σ π_i = n``; items hitting the cap are
    included with certainty and the rest rescaled (iteratively, since
    capping one item raises λ for the others).
    """
    masses = np.asarray(masses, dtype=float)
    if masses.ndim != 1:
        raise SamplingError("masses must be one-dimensional")
    if np.any(masses < 0):
        raise SamplingError("masses must be non-negative")
    if not 0 < n <= masses.shape[0]:
        raise SamplingError(
            f"cannot draw {n} items from {masses.shape[0]} masses"
        )
    if np.all(masses == 0):
        return np.full(masses.shape[0], n / masses.shape[0])
    pis = np.zeros(masses.shape[0])
    certain = np.zeros(masses.shape[0], dtype=bool)
    remaining = float(n)
    while True:
        free = ~certain
        total_mass = masses[free].sum()
        if total_mass <= 0:
            # all remaining mass is zero: spread the leftover uniformly
            free_count = int(free.sum())
            if free_count:
                pis[free] = remaining / free_count
            break
        scaled = masses[free] * (remaining / total_mass)
        if scaled.max() <= 1.0 + 1e-12:
            pis[free] = np.clip(scaled, 0.0, 1.0)
            break
        newly_certain_local = scaled >= 1.0
        free_indices = np.flatnonzero(free)
        certain[free_indices[newly_certain_local]] = True
        pis[free_indices[newly_certain_local]] = 1.0
        remaining = float(n) - float(certain.sum())
        if remaining <= 0:
            break
    return np.clip(pis, 0.0, 1.0)


def systematic_pps_sample(
    masses: np.ndarray, n: int, rng: RandomSource = None
) -> Tuple[np.ndarray, np.ndarray]:
    """Draw a fixed-size πps sample; returns (indices, their πs).

    Madow's systematic selection over a random permutation: cumulate
    the πs and pick one item per unit interval at a common random
    offset.  Every item's inclusion probability is exactly its π, and
    the sample size is exactly ``round(Σπ) = n``.
    """
    rng = ensure_rng(rng)
    pis = pps_inclusion_probabilities(masses, n)
    order = rng.permutation(pis.shape[0])
    cumulative = np.cumsum(pis[order])
    offset = rng.uniform(0.0, 1.0)
    # item i is selected iff an integer k with c_{i-1} <= offset+k < c_i
    picks = np.searchsorted(
        cumulative, offset + np.arange(int(round(cumulative[-1]))), side="right"
    )
    picks = np.unique(picks[picks < order.shape[0]])
    indices = order[picks]
    return indices, pis[indices]
