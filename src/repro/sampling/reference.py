"""Literal transcriptions of the paper's pseudocode (Figures 2, 3, 6).

These are deliberately tuple-at-a-time and follow the figures line by
line, including the detail that one random draw serves both the
acceptance test and the slot choice.  Tests compare the production
(vectorised) samplers against these references:

* acceptance *rates* must match exactly in expectation;
* for Figure 2 the slot reuse is distributionally equivalent to a
  fresh uniform slot draw (conditioned on acceptance, ``rnd`` is
  uniform over ``[0, n)``);
* for Figures 3 and 6 the literal slot expression ``floor(n·rnd)``
  concentrates evictions in the low slots whenever the acceptance
  probability is below one (conditioned on acceptance, ``rnd`` is
  uniform over ``[0, p)``, so only slots ``< n·p`` are ever
  replaced).  The production samplers rescale the draw to keep
  evictions uniform, matching the prose ("another randomly chosen one
  is thrown out") rather than the pseudocode artefact.  The
  ``test_reference_slot_artifact`` tests document the difference.
"""

from __future__ import annotations

import math
from typing import Callable, Iterable, List, Tuple

import numpy as np

from repro.util.rng import RandomSource, ensure_rng


def reservoir_r_reference(
    stream: Iterable[object], n: int, rng: RandomSource = None
) -> List[object]:
    """Paper Figure 2, line by line.

    ``populate the sample smp with the first n tuples;
    cnt := n;
    while (tpl := block until next tuple())
        cnt++;
        rnd := floor(cnt*random());
        if (rnd < n) smp[rnd] := tpl;``
    """
    rng = ensure_rng(rng)
    smp: List[object] = []
    cnt = 0
    for tpl in stream:
        if len(smp) < n:
            smp.append(tpl)
            cnt += 1
            continue
        cnt += 1
        rnd = math.floor(cnt * rng.random())
        if rnd < n:
            smp[rnd] = tpl
    return smp


def last_seen_reference(
    stream: Iterable[object],
    n: int,
    daily_ingest: int,
    keep: int,
    rng: RandomSource = None,
) -> List[object]:
    """Paper Figure 3, line by line.

    ``populate the sample smp with the first n tuples;
    while (tpl := block until next tuple())
        rnd := random();
        if ((D*rnd) < k) smp[floor(n*rnd)] := tpl;``

    Note the slot expression: with acceptance probability ``k/D < 1``
    only slots below ``n·k/D`` are ever replaced.  See the module
    docstring.
    """
    rng = ensure_rng(rng)
    smp: List[object] = []
    for tpl in stream:
        if len(smp) < n:
            smp.append(tpl)
            continue
        rnd = rng.random()
        if daily_ingest * rnd < keep:
            smp[math.floor(n * rnd)] = tpl
    return smp


def biased_reference(
    stream: Iterable[Tuple[object, float]],
    n: int,
    predicate_set_size: int,
    mass_fn: Callable[[object], float] | None = None,
    rng: RandomSource = None,
) -> List[object]:
    """Paper Figure 6, line by line.

    ``populate the sample smp with the first n tuples;
    cnt := n;
    while (tpl := block until next tuple())
        cnt++;
        rnd := random();
        if ((cnt*rnd) < (n*N*f̆(tpl))) smp[floor(rnd*n)] := tpl;``

    ``stream`` yields ``(tuple, f̆(tuple))`` pairs unless ``mass_fn``
    is given, in which case it yields plain tuples and ``mass_fn``
    computes ``f̆``.
    """
    rng = ensure_rng(rng)
    smp: List[object] = []
    cnt = 0
    for item in stream:
        if mass_fn is None:
            tpl, f_value = item  # type: ignore[misc]
        else:
            tpl, f_value = item, mass_fn(item)
        if len(smp) < n:
            smp.append(tpl)
            cnt += 1
            continue
        cnt += 1
        rnd = rng.random()
        if cnt * rnd < n * predicate_set_size * f_value:
            smp[math.floor(rnd * n)] = tpl
    return smp


def slot_histogram_last_seen(
    total: int,
    n: int,
    daily_ingest: int,
    keep: int,
    rng: RandomSource = None,
) -> np.ndarray:
    """Count how often each slot is replaced by the literal Figure-3
    code over ``total`` offered tuples (documents the slot artefact)."""
    rng = ensure_rng(rng)
    hits = np.zeros(n, dtype=np.int64)
    for _ in range(total):
        rnd = rng.random()
        if daily_ingest * rnd < keep:
            hits[math.floor(n * rnd)] += 1
    return hits
