"""Sampling algorithms: the paper's reservoir family plus baselines.

* :mod:`repro.sampling.reservoir` — Algorithm R (paper Figure 2), the
  uniform baseline every impression policy builds on.
* :mod:`repro.sampling.last_seen` — the Last Seen construction
  (Figure 3): fixed acceptance probability ``k/D`` biases retention
  toward recently ingested tuples.
* :mod:`repro.sampling.biased` — the biased reservoir (Figure 6):
  acceptance probability ``f̆(t)·N·n/cnt`` steered by the workload
  interest model.
* :mod:`repro.sampling.weighted` — Efraimidis–Spirakis A-Res weighted
  reservoir, the literature baseline biased sampling is compared to.
* :mod:`repro.sampling.bernoulli` — Bernoulli (coin-flip) sampling,
  the unbounded-size strawman.
* :mod:`repro.sampling.join_synopsis` — FK-consistent sampling across
  tables (Acharya et al., ref [3]).
* :mod:`repro.sampling.reference` — literal, line-by-line
  transcriptions of the paper's pseudocode (Figures 2, 3, 6), used by
  tests to validate the production implementations and to document
  where the pseudocode's slot-index reuse deviates from its prose.
"""

from repro.sampling.reservoir import ReservoirR
from repro.sampling.last_seen import LastSeenReservoir
from repro.sampling.biased import BiasedReservoir
from repro.sampling.weighted import WeightedReservoir
from repro.sampling.bernoulli import BernoulliSampler
from repro.sampling.join_synopsis import JoinSynopsis
from repro.sampling.extrema import ExtremaReservoir
from repro.sampling.icicles import SelfTuningReservoir
from repro.sampling.pps import (
    pps_inclusion_probabilities,
    systematic_pps_sample,
)

__all__ = [
    "ReservoirR",
    "LastSeenReservoir",
    "BiasedReservoir",
    "WeightedReservoir",
    "BernoulliSampler",
    "JoinSynopsis",
    "ExtremaReservoir",
    "SelfTuningReservoir",
    "pps_inclusion_probabilities",
    "systematic_pps_sample",
]
