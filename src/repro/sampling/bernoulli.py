"""Bernoulli sampling — the unbounded-size strawman baseline.

Each tuple is kept independently with a fixed probability.  Unlike the
reservoir family it cannot promise a memory footprint (the sample
grows with the data), which is exactly why SciBORQ insists on
reservoir designs for impressions (paper §3.3 property (a): "a fixed
capacity of tuples that can fit in the sample").  The E12 benchmark
uses it to show the footprint divergence.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SamplingError
from repro.util.rng import RandomSource, ensure_rng


class BernoulliSampler:
    """Keep each offered tuple independently with probability ``rate``."""

    def __init__(self, rate: float, rng: RandomSource = None) -> None:
        if not 0.0 < rate <= 1.0:
            raise SamplingError(f"rate must be in (0, 1], got {rate}")
        self.rate = float(rate)
        self.rng = ensure_rng(rng)
        self._kept: list[np.ndarray] = []
        self._seen = 0

    def offer_batch(self, row_ids: np.ndarray) -> int:
        """Flip one coin per tuple; returns the number kept."""
        row_ids = np.asarray(row_ids, dtype=np.int64)
        self._seen += row_ids.shape[0]
        mask = self.rng.random(row_ids.shape[0]) < self.rate
        kept = row_ids[mask]
        if kept.shape[0]:
            self._kept.append(kept)
        return int(kept.shape[0])

    @property
    def seen(self) -> int:
        """Total tuples offered."""
        return self._seen

    @property
    def size(self) -> int:
        """Tuples currently kept (grows without bound)."""
        return sum(chunk.shape[0] for chunk in self._kept)

    @property
    def row_ids(self) -> np.ndarray:
        """Row ids of all kept tuples."""
        if not self._kept:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(self._kept)

    def inclusion_probabilities(self) -> np.ndarray:
        """Exact π = rate for every kept tuple."""
        return np.full(self.size, self.rate)

    def __len__(self) -> int:
        return self.size
