"""An astronomer's exploration session (paper §2.1 workload).

Run:  python examples/skyserver_exploration.py

Reproduces the paper's motivating scenario: a scientist iterates
cone searches (``fGetNearbyObjEq``) around objects of interest.  The
engine logs every query, mines the predicate set, and — once the
interest model is warm — biased impressions concentrate on the focal
areas, making focal queries cheap AND tight.  Also demonstrates the
paper's LIMIT semantics (§3.2): representative rows instead of "the
lucky N first tuples".
"""


from repro import AggregateSpec, Contract, Query, SciBorq
from repro.skyserver import (
    WorkloadGenerator,
    build_skyserver,
    create_skyserver_catalog,
    nearby_query,
    register_skyserver_views,
)
from repro.skyserver.functions import nearby_count_query
from repro.skyserver.schema import DEC_RANGE, RA_RANGE


def main() -> None:
    engine = SciBorq(
        create_skyserver_catalog(),
        interest_attributes={"ra": RA_RANGE, "dec": DEC_RANGE},
        rng=7,
    )
    engine.create_hierarchy(
        "PhotoObjAll", policy="uniform", layer_sizes=(30_000, 3_000, 300)
    )
    build_skyserver(300_000, loader=engine.loader, rng=8)
    register_skyserver_views(engine.catalog)

    # --- phase 1: the scientist works; the engine watches -------------
    workload = WorkloadGenerator(rng=9)
    print("phase 1: running 300 exploratory queries (interest builds up)")
    for query in workload.queries(300):
        engine.execute(query)
    ra_interest = engine.interest.interest_for("ra")
    print(f"  predicate set: N = {ra_interest.predicate_set_size} ra values")
    hot = engine.query_log.most_common_fingerprints(1)[0]
    print(f"  hottest query shape repeated {hot[1]}x")
    print()

    # --- phase 2: switch to biased impressions ------------------------
    print("phase 2: rebuilding impressions with workload bias (πps)")
    engine.create_hierarchy(
        "PhotoObjAll", policy="biased", layer_sizes=(30_000, 3_000, 300)
    )
    engine.rebuild("PhotoObjAll")
    layer0 = engine.hierarchy("PhotoObjAll").layer(0)
    base = engine.catalog.table("PhotoObjAll")
    sample_ra = layer0.materialise(base)["ra"]
    focal_share = ((sample_ra > 135) & (sample_ra < 165)).mean()
    base_share = ((base["ra"] > 135) & (base["ra"] < 165)).mean()
    print(
        f"  ra in [135,165]: {focal_share:.1%} of the impression vs "
        f"{base_share:.1%} of the base data"
    )
    print()

    # --- phase 3: focal queries are now cheap and tight ---------------
    print("phase 3: a focal cone count with a 5% bound")
    outcome = engine.execute(
        nearby_count_query(150.0, 10.0, 3.0), Contract.within_error(0.05)
    )
    print(outcome.describe())
    estimate = outcome.result.estimates["count(*)"]
    exact = engine.execute_exact(nearby_count_query(150.0, 10.0, 3.0))
    print(f"  estimate: {estimate}")
    print(f"  exact:    {exact.scalar('count(*)'):g}")
    print()

    # --- phase 4: the paper's LIMIT semantics --------------------------
    print("phase 4: LIMIT 10 — representative rows, not the first 10")
    limited = engine.execute(
        nearby_query(150.0, 10.0, 10.0, select=("objID", "ra", "dec"), limit=10)
    )
    ids = limited.result.rows["objID"]
    print(f"  sampled objIDs span the whole table: min={ids.min()}, max={ids.max()}")
    print(f"  estimated matching population: {limited.result.support}")
    print()

    # --- phase 5: a Galaxy-view aggregate through the same machinery ---
    print("phase 5: Galaxy view (obj_type filter + Photoz join)")
    galaxy_outcome = engine.execute(
        Query(
            table="Galaxy",
            aggregates=[AggregateSpec("count"), AggregateSpec("avg", "z_est")],
        ),
        Contract.within_error(0.1),
    )
    for name, estimate in galaxy_outcome.result.estimates.items():
        print(f"  {name} = {estimate}")


if __name__ == "__main__":
    main()
