"""Extensions from the paper's related/future work (§5, footnote 3).

Run:  python examples/self_tuning_and_2d.py

Two techniques the paper names but does not build:

* **ICICLES-style self-tuning samples** — "a side-effect of a query
  evaluation is to update an impression using query results": rows a
  query touches get another inclusion chance, so the sample drifts to
  the working set with no interest model at all.
* **2-D coupled interest** — the footnote-3 "more attractive"
  multi-dimensional histogram: a workload probing (150,10) and
  (205,40) should not boost the phantom cross-products (150,40) /
  (205,10), but per-attribute marginals cannot tell them apart.
"""

import numpy as np

from repro import SciBorq
from repro.sampling.pps import systematic_pps_sample
from repro.skyserver import build_skyserver, create_skyserver_catalog
from repro.skyserver.functions import nearby_count_query
from repro.skyserver.schema import DEC_RANGE, RA_RANGE
from repro.workload.interest import CoupledInterest, InterestModel


def cone_share(ra, dec, ids, centre, radius=8.0):
    dx = ra[ids] - centre[0]
    dy = dec[ids] - centre[1]
    return float((dx * dx + dy * dy < radius * radius).mean())


def main() -> None:
    engine = SciBorq(
        create_skyserver_catalog(),
        interest_attributes={"ra": RA_RANGE, "dec": DEC_RANGE},
        rng=71,
    )
    engine.create_hierarchy(
        "PhotoObjAll", policy="uniform", layer_sizes=(10_000, 1_000)
    )
    tuner = engine.enable_result_recycling("PhotoObjAll", capacity=3_000)
    build_skyserver(150_000, loader=engine.loader, rng=72)

    # --- part 1: self-tuning via query results -------------------------
    print("part 1: ICICLES-style result recycling")
    hot_query = nearby_count_query(150.0, 10.0, 4.0)
    for _ in range(8):  # the scientist hammers one region, exactly
        engine.execute_exact(hot_query)
    base = engine.catalog.table("PhotoObjAll")
    ra, dec = base["ra"], base["dec"]
    ids = tuner.row_ids
    in_hot = cone_share(ra, dec, ids, (150.0, 10.0), radius=4.0)
    population = cone_share(ra, dec, np.arange(base.num_rows), (150.0, 10.0), 4.0)
    print(f"  result offers absorbed: {tuner.result_offers}")
    print(
        f"  hot-region share of the self-tuning sample: {in_hot:.1%} "
        f"(population share {population:.1%})"
    )
    print()

    # --- part 2: coupled vs marginal interest ---------------------------
    print("part 2: 2-D coupled interest vs per-attribute marginals")
    rng = np.random.default_rng(73)
    workload_ra = np.concatenate(
        [rng.normal(150, 3, 200), rng.normal(205, 3, 200)]
    )
    workload_dec = np.concatenate(
        [rng.normal(10, 2, 200), rng.normal(40, 2, 200)]
    )
    marginal = InterestModel({"ra": RA_RANGE, "dec": DEC_RANGE}, bins=24)
    marginal.observe_values("ra", workload_ra)
    marginal.observe_values("dec", workload_dec)
    coupled = CoupledInterest("ra", "dec", RA_RANGE, DEC_RANGE, bins=24)
    coupled.observe_pairs(workload_ra, workload_dec)

    print("  10k-tuple πps impressions steered by each model:")
    for name, model in (("marginal", marginal), ("coupled ", coupled)):
        masses = np.maximum(
            model.mass({"ra": ra.copy(), "dec": dec.copy()}), 1e-6
        )
        picked, _ = systematic_pps_sample(masses, 10_000, rng=74)
        true_share = cone_share(ra, dec, picked, (150, 10)) + cone_share(
            ra, dec, picked, (205, 40)
        )
        phantom_share = cone_share(ra, dec, picked, (150, 40)) + cone_share(
            ra, dec, picked, (205, 10)
        )
        print(
            f"    {name}: true targets {true_share:.1%}, "
            f"phantom cross-products {phantom_share:.1%}"
        )


if __name__ == "__main__":
    main()
