"""Progressive answers: watch the ladder climb, stop when satisfied.

Run:  python examples/progressive_exploration.py

SciBORQ's promise is an *anytime* one — the best answer within the
bound — and every escalation rung produces a statistically valid
estimate.  ``engine.submit`` exposes that ladder while it climbs:

* iterate the returned :class:`QueryHandle` and each rung arrives as
  a :class:`ProgressUpdate` (estimate, confidence interval, achieved
  error, cost spent);
* **early-cancel** the moment the interval is tight enough for the
  question at hand — the remaining (most expensive) rungs are never
  scanned;
* or let it run and ``result()`` is exactly what blocking
  ``execute`` would have returned.

This is the exploratory-science loop: a scientist eyeballing a cone
search does not need the fourth decimal — they need to know *now*
whether the region is worth a precise pass.
"""

from repro import AggregateSpec, Contract, Query, RadialPredicate, SciBorq
from repro.skyserver import build_skyserver, create_skyserver_catalog
from repro.skyserver.schema import DEC_RANGE, RA_RANGE


def main() -> None:
    engine = SciBorq(
        create_skyserver_catalog(),
        interest_attributes={"ra": RA_RANGE, "dec": DEC_RANGE},
        rng=23,
    )
    engine.create_hierarchy(
        "PhotoObjAll", policy="uniform", layer_sizes=(40_000, 4_000, 400)
    )
    build_skyserver(400_000, loader=engine.loader, rng=24)

    query = Query(
        table="PhotoObjAll",
        predicate=RadialPredicate("ra", "dec", 205.0, 40.0, 4.0),
        aggregates=[AggregateSpec("count"), AggregateSpec("avg", "r_mag")],
    )

    # ------------------------------------------------------------------
    # 1. stream the whole ladder down to the exact answer
    # ------------------------------------------------------------------
    print("=== streaming a zero-error climb, rung by rung ===")
    handle = engine.submit(query, Contract.within_error(0.0))
    for update in handle:
        estimate = update.result.estimates["avg(r_mag)"]
        low, high = update.result.intervals()["avg(r_mag)"]
        print(
            f"  {update.describe()}\n"
            f"      avg(r_mag) = {estimate.value:.4f}  "
            f"95% CI [{low:.4f}, {high:.4f}]"
        )
    final = handle.result()
    print(f"  final: exact={final.result.exact}, cost={final.total_cost:g}\n")

    # ------------------------------------------------------------------
    # 2. early-cancel once the CI is tight enough for our purposes
    # ------------------------------------------------------------------
    good_enough = 0.06  # ~6% relative error suffices for triage
    print(f"=== same climb, cancelling once error < {good_enough:g} ===")
    handle = engine.submit(query, Contract.within_error(0.0))
    for update in handle:
        print(f"  {update.describe()}")
        if update.best_error < good_enough:
            outcome = handle.cancel()  # keeps best-so-far, scans no more
            break
    else:  # pragma: no cover - tiny skies might satisfy on rung 0
        outcome = handle.result()
    print(
        f"  cancelled after {len(outcome.attempts)} rung(s): "
        f"error {outcome.achieved_error:.4g} at cost {outcome.total_cost:g} "
        f"(vs {final.total_cost:g} for the full climb, "
        f"{final.total_cost / outcome.total_cost:.0f}x more)"
    )
    saved = 1.0 - outcome.total_cost / final.total_cost
    print(f"  {saved:.0%} of the work never happened\n")

    # ------------------------------------------------------------------
    # 3. progress callbacks (how a UI would subscribe)
    # ------------------------------------------------------------------
    print("=== on_progress callbacks ===")
    ticks: list[str] = []
    engine.submit(
        query, Contract.within_error(0.05) & Contract.within_budget(200_000)
    ).on_progress(
        lambda update: ticks.append(
            f"{update.source}@{update.achieved_error:.3g}"
        )
    ).result()
    print("  delivered:", " → ".join(ticks))


if __name__ == "__main__":
    main()
