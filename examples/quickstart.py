"""Quickstart: build a synthetic SkyServer, ask bounded questions.

Run:  python examples/quickstart.py

Covers the core loop in ~40 lines of user code: create the engine,
declare a hierarchy of impressions, load data (impressions build
during the load), then query with an error bound and watch the engine
escalate layers until the bound holds.
"""

from repro import AggregateSpec, Contract, Query, RadialPredicate, SciBorq
from repro.skyserver import build_skyserver, create_skyserver_catalog
from repro.skyserver.schema import DEC_RANGE, RA_RANGE


def main() -> None:
    # 1. An engine over the SkyServer schema; ra/dec are the
    #    attributes of scientific interest (paper §4).
    engine = SciBorq(
        create_skyserver_catalog(),
        interest_attributes={"ra": RA_RANGE, "dec": DEC_RANGE},
        rng=42,
    )

    # 2. Three impression layers: memory-sized, cache-sized, tiny.
    engine.create_hierarchy(
        "PhotoObjAll", policy="uniform", layer_sizes=(20_000, 2_000, 200)
    )

    # 3. Load 200k synthetic observations; every batch streams through
    #    the impression builders on its way into the base table.
    build_skyserver(200_000, loader=engine.loader, rng=43)
    print(engine.summary())
    print()

    # 4. A cone search near a known cluster, with a 5% error bound.
    query = Query(
        table="PhotoObjAll",
        predicate=RadialPredicate("ra", "dec", 150.0, 10.0, 4.0),
        aggregates=[AggregateSpec("count"), AggregateSpec("avg", "r_mag")],
    )
    result = engine.execute(query, Contract.within_error(0.05))
    print("--- bounded execution trace ---")
    print(result.describe())
    print()
    print("--- answer ---")
    print(result.result.describe())
    print()

    # 5. Compare with the exact (full-scan) answer.
    exact = engine.execute_exact(query)
    print("--- exact answer (full scan) ---")
    for name, value in exact.scalars.items():
        print(f"  {name} = {value:.6g}")
    print(f"  cost: {exact.stats.total_cost} tuples touched")


if __name__ == "__main__":
    main()
