"""Adaptive impressions under a shifting workload (paper §3.1).

Run:  python examples/adaptive_drift.py

"SciBORQ constantly adapts towards the shifting focal points of real
time data exploration."  A scientist studies cluster A, then abruptly
moves to a new region.  The drift detector fires, the interest
histograms decay, and maintenance refreshes the impressions — after
which the small layers have re-focused on the new region.
"""


from repro import SciBorq
from repro.skyserver import (
    FocalPoint,
    WorkloadGenerator,
    build_skyserver,
    create_skyserver_catalog,
)
from repro.skyserver.schema import DEC_RANGE, RA_RANGE


def focal_share(engine: SciBorq, lo: float, hi: float) -> float:
    base = engine.catalog.table("PhotoObjAll")
    layer = engine.hierarchy("PhotoObjAll").layer(0)
    ra = layer.materialise(base)["ra"]
    return float(((ra > lo) & (ra < hi)).mean())


def main() -> None:
    engine = SciBorq(
        create_skyserver_catalog(),
        interest_attributes={"ra": RA_RANGE, "dec": DEC_RANGE},
        drift_threshold=0.3,
        rng=23,
    )
    engine.create_hierarchy(
        "PhotoObjAll", policy="biased", layer_sizes=(15_000, 1_500)
    )
    build_skyserver(150_000, loader=engine.loader, rng=24)

    # --- era 1: attention on cluster A at ra≈150 ------------------------
    workload = WorkloadGenerator(
        focal_points=[FocalPoint(150.0, 10.0, 4.0, 3.0)], rng=25
    )
    for query in workload.queries(250):
        engine.collector.observe(query)
    engine.rebuild("PhotoObjAll")
    print("era 1: workload focused on ra≈150")
    print(f"  impression share with ra in [140,160]: {focal_share(engine, 140, 160):.1%}")
    print(f"  impression share with ra in [195,215]: {focal_share(engine, 195, 215):.1%}")
    print()

    # --- era 2: attention jumps to cluster B at ra≈205 -------------------
    print("era 2: the scientist moves to ra≈205")
    workload.shift([FocalPoint(205.0, 40.0, 4.0, 3.0)])
    for query in workload.queries(250):
        engine.collector.observe(query)
    distance = engine.planner.detectors["ra"].distance()
    print(f"  drift distance (TV): {distance:.3f}  -> drifted: "
          f"{engine.planner.detectors['ra'].drifted}")

    reports = engine.maintain()
    for table, refreshes in reports.items():
        for report in refreshes:
            print(
                f"  maintenance: refreshed {report.target} from "
                f"{report.source} ({report.tuples_streamed} tuples touched)"
            )
    # maintenance refreshes small layers cheaply; a full refocus of the
    # biggest layer applies the decayed+new interest to the base
    engine.rebuild("PhotoObjAll")
    print("after refocus:")
    print(f"  impression share with ra in [140,160]: {focal_share(engine, 140, 160):.1%}")
    print(f"  impression share with ra in [195,215]: {focal_share(engine, 195, 215):.1%}")
    print(f"  drift events handled: {engine.planner.drift_events}")


if __name__ == "__main__":
    main()
