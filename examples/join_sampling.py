"""Join synopses: sampling across the schema (paper §3.1/§3.3, ref [3]).

Run:  python examples/join_sampling.py

"Impressions do not contain just a single attribute or relation, but
may span the entire database logical schema."  This example samples
the fact table, pulls exactly the dimension rows the sampled facts
reference, and shows that FK joins on the synopsis are lossless while
independently-sampled tables lose most of their join partners.
"""

import numpy as np

from repro import AggregateSpec, Catalog, Executor, JoinSpec, Query
from repro.sampling.join_synopsis import JoinSynopsis
from repro.sampling.reservoir import ReservoirR
from repro.skyserver import build_skyserver


def join_query() -> Query:
    return Query(
        table="PhotoObjAll",
        joins=[JoinSpec("Field", "fieldID", "fieldID", ("sky_brightness",))],
        aggregates=[AggregateSpec("count"), AggregateSpec("avg", "sky_brightness")],
    )


def main() -> None:
    catalog, loader, generator = build_skyserver(200_000, rng=33)
    base = catalog.table("PhotoObjAll")

    # sample 5 000 fact rows with Algorithm R
    sampler = ReservoirR(5_000, rng=34)
    sampler.offer_batch(np.arange(base.num_rows))

    # --- the join synopsis ------------------------------------------------
    synopsis = JoinSynopsis(catalog, "PhotoObjAll")
    synopsis.refresh(sampler.row_ids)
    print("join synopsis contents:")
    for table_name, table in synopsis.materialise().items():
        print(f"  {table_name}: {table.num_rows} rows")
    print(f"  pending FK keys: {synopsis.has_pending}")
    print()

    exact = Executor(catalog).execute(join_query())
    on_synopsis = Executor(synopsis.to_catalog()).execute(join_query())
    scale = base.num_rows / sampler.size

    print("PhotoObjAll ⨝ Field aggregate:")
    print(f"  exact count:            {exact.scalar('count(*)'):>10g}")
    print(
        f"  synopsis count (scaled): {on_synopsis.scalar('count(*)') * scale:>10g}"
        f"   (no dangling rows: {on_synopsis.scalar('count(*)'):g} of "
        f"{sampler.size} sampled facts joined)"
    )
    print(
        f"  avg(sky_brightness):     exact={exact.scalar('avg(sky_brightness)'):.4f}"
        f"  synopsis={on_synopsis.scalar('avg(sky_brightness)'):.4f}"
    )
    print()

    # --- the independent-samples strawman ---------------------------------
    rng = np.random.default_rng(35)
    field = catalog.table("Field")
    independent = Catalog()
    independent.add_table(base.take(sampler.row_ids, "PhotoObjAll"))
    independent.add_table(
        field.take(
            rng.choice(field.num_rows, field.num_rows // 4, replace=False),
            "Field",
        )
    )
    broken = Executor(independent).execute(join_query())
    print("independently sampled fact + 25% of Field (the strawman):")
    print(
        f"  surviving joins: {broken.scalar('count(*)'):g} of {sampler.size} "
        f"({broken.scalar('count(*)') / sampler.size:.0%}) — the rest dangle"
    )


if __name__ == "__main__":
    main()
