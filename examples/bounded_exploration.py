"""Runtime and quality bounds in action (paper §3.2).

Run:  python examples/bounded_exploration.py

Demonstrates both halves of "Bounds On Runtime and Quality":

* quality-bounded: sweep the error bound from loose to zero and watch
  execution escalate layer by layer down to the base columns;
* time-bounded: "give me the most representative result you can
  obtain within <budget>" — sweep budgets and watch the achieved
  error fall as the budget rises;
* strict mode: contracts that raise instead of degrading.
"""

from repro import AggregateSpec, Query, QualityContract, RadialPredicate, SciBorq
from repro.errors import QualityBoundError
from repro.skyserver import build_skyserver, create_skyserver_catalog
from repro.skyserver.schema import DEC_RANGE, RA_RANGE
from repro.util.textplot import format_table


def main() -> None:
    engine = SciBorq(
        create_skyserver_catalog(),
        interest_attributes={"ra": RA_RANGE, "dec": DEC_RANGE},
        rng=17,
    )
    engine.create_hierarchy(
        "PhotoObjAll", policy="uniform", layer_sizes=(40_000, 4_000, 400)
    )
    build_skyserver(400_000, loader=engine.loader, rng=18)

    query = Query(
        table="PhotoObjAll",
        predicate=RadialPredicate("ra", "dec", 205.0, 40.0, 5.0),
        aggregates=[AggregateSpec("count")],
    )
    processor = engine.processor("PhotoObjAll")

    # --- error-bound sweep --------------------------------------------
    print("=== quality-bounded: error target sweep ===")
    rows = []
    for target in (0.5, 0.1, 0.05, 0.01, 0.0):
        outcome = processor.execute(
            query, QualityContract(max_relative_error=target)
        )
        rows.append(
            [
                target,
                outcome.attempts[-1].source,
                len(outcome.attempts),
                outcome.total_cost,
                outcome.achieved_error,
            ]
        )
    print(
        format_table(
            ["target", "answered from", "attempts", "cost", "achieved"], rows
        )
    )
    print()

    # --- time-budget sweep ----------------------------------------------
    print("=== time-bounded: budget sweep (cost units = tuples touched) ===")
    rows = []
    for budget in (500, 5_000, 50_000, 500_000, 2_000_000):
        outcome = processor.execute(
            query,
            QualityContract(max_relative_error=0.0, time_budget=budget),
        )
        rows.append(
            [
                budget,
                outcome.total_cost,
                outcome.achieved_error,
                "yes" if outcome.met_budget else "NO",
            ]
        )
    print(format_table(["budget", "spent", "achieved error", "in budget"], rows))
    print()

    # --- strict contracts ------------------------------------------------
    print("=== strict mode ===")
    try:
        processor.execute(
            query,
            QualityContract(
                max_relative_error=0.001, time_budget=2_000, strict=True
            ),
        )
    except QualityBoundError as error:
        print(f"  refused as promised: {error}")


if __name__ == "__main__":
    main()
