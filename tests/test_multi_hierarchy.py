"""Tests for multiple named hierarchies per table (paper §3.1)."""

import pytest

from repro.columnstore import AggregateSpec, Query
from repro.columnstore.expressions import Between, RadialPredicate
from repro.errors import ImpressionError
from repro.skyserver.generator import SkyGenerator


@pytest.fixture
def engine(fresh_sky_engine):
    """The fresh engine plus a second, last-seen hierarchy."""
    fresh_sky_engine.create_hierarchy(
        "PhotoObjAll",
        policy="last-seen",
        layer_sizes=(3_000, 300),
        daily_ingest=10_000,
        make_default=False,
    )
    return fresh_sky_engine


class TestRegistry:
    def test_both_hierarchies_listed(self, engine):
        assert set(engine.hierarchy_names("PhotoObjAll")) == {
            "uniform",
            "last-seen",
        }

    def test_default_unchanged_when_not_requested(self, engine):
        default = engine.hierarchy("PhotoObjAll")
        assert "uniform" in default.name

    def test_named_lookup(self, engine):
        assert "last-seen" in engine.hierarchy("PhotoObjAll", "last-seen").name

    def test_unknown_name_rejected(self, engine):
        with pytest.raises(ImpressionError, match="no hierarchy named"):
            engine.hierarchy("PhotoObjAll", "ghost")

    def test_make_default_switches(self, engine):
        engine.create_hierarchy(
            "PhotoObjAll",
            policy="uniform",
            layer_sizes=(2_000, 200),
            name="fresh",
            make_default=True,
        )
        assert "fresh" in engine.hierarchy("PhotoObjAll").name

    def test_drop_hierarchy(self, engine):
        engine.drop_hierarchy("PhotoObjAll", "last-seen")
        assert engine.hierarchy_names("PhotoObjAll") == ["uniform"]
        with pytest.raises(ImpressionError):
            engine.hierarchy("PhotoObjAll", "last-seen")

    def test_drop_default_falls_back(self, engine):
        engine.drop_hierarchy("PhotoObjAll", "uniform")
        assert "last-seen" in engine.hierarchy("PhotoObjAll").name

    def test_drop_unknown_rejected(self, engine):
        with pytest.raises(ImpressionError, match="no hierarchy named"):
            engine.drop_hierarchy("PhotoObjAll", "ghost")


class TestParallelFeeding:
    def test_loads_feed_every_hierarchy(self, engine):
        batch = SkyGenerator(rng=91).photoobj_batch(5_000)
        engine.ingest("PhotoObjAll", batch)
        for name in engine.hierarchy_names("PhotoObjAll"):
            layer0 = engine.hierarchy("PhotoObjAll", name).layer(0)
            assert layer0.sampler.seen >= 5_000

    def test_dropped_hierarchy_stops_receiving(self, engine):
        dropped = engine.hierarchy("PhotoObjAll", "last-seen")
        engine.drop_hierarchy("PhotoObjAll", "last-seen")
        seen_before = dropped.layer(0).sampler.seen
        engine.ingest("PhotoObjAll", SkyGenerator(rng=92).photoobj_batch(1_000))
        assert dropped.layer(0).sampler.seen == seen_before


class TestQueryRouting:
    def cone(self):
        return Query(
            table="PhotoObjAll",
            predicate=RadialPredicate("ra", "dec", 150.0, 10.0, 5.0),
            aggregates=[AggregateSpec("count")],
        )

    def test_execute_routes_to_named_hierarchy(self, engine):
        outcome = engine.execute(self.cone(), hierarchy="last-seen")
        assert "last-seen" in outcome.attempts[0].source

    def test_execute_defaults_to_default(self, engine):
        outcome = engine.execute(self.cone())
        assert "uniform" in outcome.attempts[0].source

    def test_recency_query_per_policy(self, engine):
        """The scenario the paper motivates: a Last Seen hierarchy for
        temporal queries alongside a general-purpose one."""
        # a later ingest whose observation clock continues past the
        # initial load's (mjd identifies recency, as in the paper)
        late = SkyGenerator(rng=93, mjd_start=56_000.0)
        engine.ingest("PhotoObjAll", late.photoobj_batch(10_000))
        recency_query = Query(
            table="PhotoObjAll",
            predicate=Between("mjd", 56_000.0, 1e9),
            select=("objID", "mjd"),
        )
        uniform_rows = engine.execute(recency_query).result.rows
        last_seen_rows = engine.execute(
            recency_query, hierarchy="last-seen"
        ).result.rows
        # the last-seen hierarchy simply holds more recent tuples
        assert last_seen_rows.num_rows >= uniform_rows.num_rows


class TestMaintenanceAcrossHierarchies:
    def test_maintain_refreshes_all(self, engine, rng):
        for _ in range(6):
            engine.planner.observe("ra", rng.normal(150, 2, 100))
        for _ in range(3):
            engine.planner.observe("ra", rng.normal(230, 2, 100))
        reports = engine.maintain()
        targets = {r.target for r in reports["PhotoObjAll"]}
        # one refresh edge per hierarchy (each has two layers)
        assert any("uniform" in t for t in targets)
        assert any("last-seen" in t for t in targets)