"""Tests for per-execution cost contexts and throughput calibration.

The contract under test is the tentpole of the concurrency layer:
each query's spending is metered in its own
:class:`~repro.util.clock.ExecutionContext`, observer clocks only
aggregate, and two contexts can never corrupt each other's budgets —
even when charged from many threads at once.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.columnstore import AggregateSpec, Query
from repro.columnstore.expressions import RadialPredicate
from repro.core.bounded import BoundedQueryProcessor
from repro.core.maintenance import rebuild_from_base
from repro.core.policy import UniformPolicy, build_hierarchy
from repro.util.clock import CostClock, ExecutionContext, WallClock


class TestExecutionContext:
    def test_private_meter_starts_at_zero(self):
        context = ExecutionContext(clock=CostClock())
        assert context.spent == 0.0
        assert not context.is_wall

    def test_two_contexts_on_one_clock_are_isolated(self):
        shared = CostClock()
        first = ExecutionContext(clock=shared)
        second = ExecutionContext(clock=shared)
        first.charge(100)
        second.charge(7)
        assert first.spent == 100
        assert second.spent == 7
        assert shared.now == 107  # observer aggregates everything

    def test_observers_all_receive_charges(self):
        engine_clock = CostClock()
        session_clock = CostClock()
        context = ExecutionContext(
            clock=engine_clock, observers=(session_clock,)
        )
        context.charge(42)
        assert engine_clock.now == 42
        assert session_clock.now == 42
        assert context.spent == 42

    def test_budget_arithmetic(self):
        context = ExecutionContext(clock=CostClock(), limit=10)
        assert context.affords(10)
        assert not context.affords(11)
        context.charge(4)
        assert context.remaining == 6
        assert not context.exhausted
        context.charge(6)
        assert context.exhausted
        assert context.remaining == 0.0

    def test_unbounded_context(self):
        context = ExecutionContext(clock=CostClock())
        assert context.remaining == float("inf")
        assert context.deadline is None
        assert context.affords(1e18)

    def test_deadline_on_cost_meter(self):
        context = ExecutionContext(clock=CostClock(), limit=25)
        assert context.deadline == 25

    def test_negative_charge_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            ExecutionContext(clock=CostClock()).charge(-1)

    def test_negative_limit_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            ExecutionContext(clock=CostClock(), limit=-1)

    def test_no_clock_at_all(self):
        context = ExecutionContext()
        context.charge(3)
        assert context.spent == 3

    def test_wall_mode_measures_elapsed_not_charges(self):
        wall = WallClock()
        context = ExecutionContext(clock=wall, limit=30.0)
        assert context.is_wall
        context.charge(1e9)  # forwarded units must not move the meter
        assert context.spent < 1.0
        assert context.deadline is not None
        assert context.deadline > wall.now

    def test_wall_mode_forwards_units_to_cost_observers(self):
        session_clock = CostClock()
        context = ExecutionContext(
            clock=WallClock(), observers=(session_clock,)
        )
        context.charge(500)
        assert session_clock.now == 500  # deterministic aggregate survives


class TestContextIsolationUnderContention:
    def test_concurrent_contexts_never_leak(self):
        """N threads, one shared observer clock, exact per-context spend."""
        shared = CostClock()
        n_threads, charges_each = 8, 500

        def worker(thread_index: int) -> float:
            context = ExecutionContext(clock=shared, limit=None)
            for _ in range(charges_each):
                context.charge(thread_index + 1)
            return context.spent

        with ThreadPoolExecutor(max_workers=n_threads) as pool:
            spends = list(pool.map(worker, range(n_threads)))

        for thread_index, spent in enumerate(spends):
            assert spent == (thread_index + 1) * charges_each
        assert shared.now == sum(spends)

    def test_concurrent_budgets_stay_independent(self):
        """One context exhausting its budget must not exhaust siblings."""
        shared = CostClock()
        tight = ExecutionContext(clock=shared, limit=10)
        roomy = ExecutionContext(clock=shared, limit=10_000)

        def spend(context: ExecutionContext, units: float) -> None:
            for _ in range(10):
                context.charge(units)

        with ThreadPoolExecutor(max_workers=2) as pool:
            pool.submit(spend, tight, 1.0).result()
            pool.submit(spend, roomy, 100.0).result()

        assert tight.exhausted and tight.spent == 10
        assert not roomy.exhausted and roomy.spent == 1_000
        assert shared.now == 1_010


@pytest.fixture
def wall_processor(sky_engine) -> BoundedQueryProcessor:
    hierarchy = build_hierarchy(
        "PhotoObjAll", UniformPolicy(layer_sizes=(10_000, 1_000, 100)), rng=55
    )
    rebuild_from_base(hierarchy, sky_engine.catalog.table("PhotoObjAll"))
    return BoundedQueryProcessor(
        sky_engine.catalog, hierarchy, clock=WallClock()
    )


def cone() -> Query:
    return Query(
        table="PhotoObjAll",
        predicate=RadialPredicate("ra", "dec", 150.0, 10.0, 5.0),
        aggregates=[AggregateSpec("count")],
    )


class TestWallClockThroughputCalibration:
    def test_pre_calibration_is_optimistic(self, wall_processor):
        """Before any observation, every rung must look affordable."""
        context = wall_processor.new_context(limit=1e-6)
        assert wall_processor._throughput is None
        assert wall_processor._budget_units(1e12, context) == 0.0

    def test_first_observation_sets_throughput(self, wall_processor):
        context = wall_processor.new_context()
        wall_processor._observe_throughput(1_000.0, 0.5, context)
        assert wall_processor._throughput == pytest.approx(2_000.0)

    def test_observations_average_pairwise(self, wall_processor):
        """Calibration is the running half-half average of observations."""
        context = wall_processor.new_context()
        wall_processor._observe_throughput(1_000.0, 1.0, context)  # 1000 t/s
        wall_processor._observe_throughput(3_000.0, 1.0, context)  # 3000 t/s
        assert wall_processor._throughput == pytest.approx(2_000.0)
        wall_processor._observe_throughput(500.0, 0.25, context)  # 2000 t/s
        assert wall_processor._throughput == pytest.approx(2_000.0)

    def test_zero_elapsed_is_ignored(self, wall_processor):
        context = wall_processor.new_context()
        wall_processor._observe_throughput(1_000.0, 0.0, context)
        assert wall_processor._throughput is None

    def test_cost_context_never_calibrates(self, sky_engine):
        processor = sky_engine.processor("PhotoObjAll")
        context = processor.new_context()
        processor._observe_throughput(1_000.0, 0.5, context)
        assert processor._throughput is None
        # ...and predictions pass through unconverted
        assert processor._budget_units(12_345.0, context) == 12_345.0

    def test_calibration_converts_predictions_to_seconds(self, wall_processor):
        context = wall_processor.new_context()
        wall_processor._observe_throughput(10_000.0, 1.0, context)
        assert wall_processor._budget_units(5_000.0, context) == pytest.approx(0.5)

    def test_execution_calibrates_end_to_end(self, wall_processor):
        outcome = wall_processor.execute(cone())
        assert outcome.result is not None
        assert wall_processor._throughput is not None
        assert wall_processor._throughput > 0

    def test_calibration_ignores_zero_charge_observations(self, wall_processor):
        context = wall_processor.new_context()
        wall_processor._observe_throughput(0.0, 0.5, context)
        assert wall_processor._throughput is None

    def test_calibration_uses_charged_not_predicted(self, wall_processor):
        """Regression: calibration blended the *predicted* cost over
        elapsed time, so a misestimating planner skewed the tuples/sec
        rate.  The observation must be the tuples actually charged to
        the context."""
        observations = []
        original = wall_processor._observe_throughput

        def spy(charged, elapsed, context):
            observations.append(charged)
            return original(charged, elapsed, context)

        wall_processor._observe_throughput = spy
        # a planner that is wrong by six orders of magnitude
        wall_processor._predicted_cost = lambda query, rung, base: 1e12

        aggregate = CostClock()
        context = ExecutionContext(clock=WallClock(), observers=(aggregate,))
        wall_processor.execute(cone(), context=context)

        assert observations, "execution must calibrate"
        # every observation is real charged work, never the prediction
        assert all(charged < 1e12 for charged in observations)
        assert sum(observations) == pytest.approx(aggregate.now)


class TestChargedUnits:
    def test_cost_mode_charged_equals_spent(self):
        context = ExecutionContext(clock=CostClock())
        context.charge(25)
        assert context.charged_units == context.spent == 25

    def test_wall_mode_counts_charged_units_separately(self):
        context = ExecutionContext(clock=WallClock())
        context.charge(1_000)
        context.charge(500)
        assert context.charged_units == 1_500
        assert context.spent < 1.0  # the meter itself is seconds


class TestContractContextAgreement:
    def test_unlimited_context_still_enforces_contract_budget(self, sky_engine):
        """A caller-opened meter must still enforce the time budget —
        without the processor mutating the caller's context."""
        from repro.core.bounded import QualityContract

        processor = sky_engine.processor("PhotoObjAll")
        context = processor.new_context()  # limit=None
        outcome = processor.execute(
            cone(),
            QualityContract(max_relative_error=0.0, time_budget=5_000),
            context=context,
        )
        assert context.limit is None  # caller's context untouched
        assert outcome.total_cost <= 5_000
        assert outcome.met_budget

    def test_reused_context_budgets_are_per_call(self, sky_engine):
        """Budgets apply to each call's own spending, so a reused
        context neither inherits stale limits nor double-counts."""
        from repro.core.bounded import QualityContract

        processor = sky_engine.processor("PhotoObjAll")
        context = processor.new_context()
        budgeted = QualityContract(max_relative_error=0.0, time_budget=5_000)
        first = processor.execute(cone(), budgeted, context=context)
        assert first.met_budget and first.total_cost <= 5_000
        # same budgeted contract again: judged on this call only, not
        # on the context's cumulative spend
        second = processor.execute(cone(), budgeted, context=context)
        assert second.met_budget and second.total_cost <= 5_000
        # an unbounded contract on the same context escalates freely
        third = processor.execute(
            cone(), QualityContract(max_relative_error=0.0), context=context
        )
        assert third.achieved_error == 0.0  # reached the exact base rung
        assert context.spent == (
            first.total_cost + second.total_cost + third.total_cost
        )
