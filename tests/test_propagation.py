"""Tests for delta-method error propagation (paper §6 future work)."""

import math

import pytest

from repro.errors import EstimationError
from repro.stats.estimators import Estimate
from repro.stats.propagation import (
    add,
    multiply,
    ratio,
    scale,
    selectivity,
    subtract,
)


def est(value: float, se: float, confidence: float = 0.95) -> Estimate:
    return Estimate(value, se, confidence, "test", 100, 1000)


class TestScale:
    def test_value_and_se(self):
        out = scale(est(10.0, 2.0), 3.0)
        assert out.value == 30.0 and out.se == 6.0

    def test_negative_factor_keeps_se_positive(self):
        out = scale(est(10.0, 2.0), -3.0)
        assert out.value == -30.0 and out.se == 6.0


class TestAddSubtract:
    def test_variances_add(self):
        out = add(est(10.0, 3.0), est(20.0, 4.0))
        assert out.value == 30.0
        assert out.se == pytest.approx(5.0)

    def test_subtract(self):
        out = subtract(est(20.0, 3.0), est(10.0, 4.0))
        assert out.value == 10.0
        assert out.se == pytest.approx(5.0)

    def test_confidence_mismatch_rejected(self):
        with pytest.raises(EstimationError, match="confidence"):
            add(est(1, 1, 0.95), est(1, 1, 0.99))


class TestMultiplyRatio:
    def test_product_delta_method(self):
        out = multiply(est(10.0, 1.0), est(5.0, 0.5))
        assert out.value == 50.0
        assert out.se == pytest.approx(math.hypot(5.0, 5.0))

    def test_ratio_relative_errors_add_in_quadrature(self):
        out = ratio(est(100.0, 10.0), est(50.0, 2.5))
        assert out.value == 2.0
        expected_rel = math.hypot(0.1, 0.05)
        assert out.se == pytest.approx(2.0 * expected_rel)

    def test_ratio_by_zero_denominator(self):
        out = ratio(est(5.0, 1.0), est(0.0, 1.0))
        assert out.se == math.inf

    def test_zero_numerator_keeps_finite_se(self):
        out = ratio(est(0.0, 1.0), est(10.0, 1.0))
        assert out.value == 0.0
        assert out.se == pytest.approx(0.1)

    def test_selectivity_wrapper(self):
        out = selectivity(est(25.0, 2.0), est(100.0, 5.0))
        assert out.value == pytest.approx(0.25)
        assert out.method == "selectivity"


class TestEmpiricalCalibration:
    def test_ratio_se_matches_monte_carlo(self, rng):
        """The delta-method SE should match the spread of simulated
        ratios of two independent normals."""
        mu_x, se_x = 100.0, 5.0
        mu_y, se_y = 50.0, 2.0
        out = ratio(est(mu_x, se_x), est(mu_y, se_y))
        draws = rng.normal(mu_x, se_x, 50_000) / rng.normal(mu_y, se_y, 50_000)
        assert out.se == pytest.approx(draws.std(), rel=0.1)
        assert out.value == pytest.approx(draws.mean(), rel=0.01)

    def test_difference_se_matches_monte_carlo(self, rng):
        out = subtract(est(10.0, 1.5), est(4.0, 2.0))
        draws = rng.normal(10, 1.5, 50_000) - rng.normal(4, 2.0, 50_000)
        assert out.se == pytest.approx(draws.std(), rel=0.05)


class TestEndToEndWithEngine:
    def test_region_contrast_with_propagated_bounds(self, sky_engine):
        """Estimate the difference in mean r_mag between two sky
        regions, each from an impression, and check the propagated
        interval covers the exact contrast."""
        from repro.columnstore import AggregateSpec, Query
        from repro.columnstore.expressions import RadialPredicate
        from repro.core.quality import ImpressionEstimator

        estimator = ImpressionEstimator(sky_engine.catalog)
        layer = sky_engine.hierarchy("PhotoObjAll").layer(0)

        def region_mean(ra, dec):
            q = Query(
                table="PhotoObjAll",
                predicate=RadialPredicate("ra", "dec", ra, dec, 6.0),
                aggregates=[AggregateSpec("avg", "r_mag")],
            )
            approx = estimator.estimate(q, layer).estimates["avg(r_mag)"]
            exact = sky_engine.execute_exact(q).scalar("avg(r_mag)")
            return approx, exact

        a_est, a_exact = region_mean(150.0, 10.0)
        b_est, b_exact = region_mean(205.0, 40.0)
        contrast = subtract(a_est, b_est)
        assert contrast.contains(a_exact - b_exact)
