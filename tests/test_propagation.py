"""Tests for delta-method error propagation (paper §6 future work)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import EstimationError
from repro.stats.estimators import Estimate
from repro.stats.propagation import (
    add,
    multiply,
    ratio,
    scale,
    selectivity,
    subtract,
)


def est(value: float, se: float, confidence: float = 0.95) -> Estimate:
    return Estimate(value, se, confidence, "test", 100, 1000)


class TestScale:
    def test_value_and_se(self):
        out = scale(est(10.0, 2.0), 3.0)
        assert out.value == 30.0 and out.se == 6.0

    def test_negative_factor_keeps_se_positive(self):
        out = scale(est(10.0, 2.0), -3.0)
        assert out.value == -30.0 and out.se == 6.0


class TestAddSubtract:
    def test_variances_add(self):
        out = add(est(10.0, 3.0), est(20.0, 4.0))
        assert out.value == 30.0
        assert out.se == pytest.approx(5.0)

    def test_subtract(self):
        out = subtract(est(20.0, 3.0), est(10.0, 4.0))
        assert out.value == 10.0
        assert out.se == pytest.approx(5.0)

    def test_confidence_mismatch_rejected(self):
        with pytest.raises(EstimationError, match="confidence"):
            add(est(1, 1, 0.95), est(1, 1, 0.99))


class TestMultiplyRatio:
    def test_product_delta_method(self):
        out = multiply(est(10.0, 1.0), est(5.0, 0.5))
        assert out.value == 50.0
        assert out.se == pytest.approx(math.hypot(5.0, 5.0))

    def test_ratio_relative_errors_add_in_quadrature(self):
        out = ratio(est(100.0, 10.0), est(50.0, 2.5))
        assert out.value == 2.0
        expected_rel = math.hypot(0.1, 0.05)
        assert out.se == pytest.approx(2.0 * expected_rel)

    def test_ratio_by_zero_denominator(self):
        out = ratio(est(5.0, 1.0), est(0.0, 1.0))
        assert out.se == math.inf

    def test_zero_numerator_keeps_finite_se(self):
        out = ratio(est(0.0, 1.0), est(10.0, 1.0))
        assert out.value == 0.0
        assert out.se == pytest.approx(0.1)

    def test_selectivity_wrapper(self):
        out = selectivity(est(25.0, 2.0), est(100.0, 5.0))
        assert out.value == pytest.approx(0.25)
        assert out.method == "selectivity"


class TestEmpiricalCalibration:
    def test_ratio_se_matches_monte_carlo(self, rng):
        """The delta-method SE should match the spread of simulated
        ratios of two independent normals."""
        mu_x, se_x = 100.0, 5.0
        mu_y, se_y = 50.0, 2.0
        out = ratio(est(mu_x, se_x), est(mu_y, se_y))
        draws = rng.normal(mu_x, se_x, 50_000) / rng.normal(mu_y, se_y, 50_000)
        assert out.se == pytest.approx(draws.std(), rel=0.1)
        assert out.value == pytest.approx(draws.mean(), rel=0.01)

    def test_difference_se_matches_monte_carlo(self, rng):
        out = subtract(est(10.0, 1.5), est(4.0, 2.0))
        draws = rng.normal(10, 1.5, 50_000) - rng.normal(4, 2.0, 50_000)
        assert out.se == pytest.approx(draws.std(), rel=0.05)


class TestEndToEndWithEngine:
    def test_region_contrast_with_propagated_bounds(self, sky_engine):
        """Estimate the difference in mean r_mag between two sky
        regions, each from an impression, and check the propagated
        interval covers the exact contrast."""
        from repro.columnstore import AggregateSpec, Query
        from repro.columnstore.expressions import RadialPredicate
        from repro.core.quality import ImpressionEstimator

        estimator = ImpressionEstimator(sky_engine.catalog)
        layer = sky_engine.hierarchy("PhotoObjAll").layer(0)

        def region_mean(ra, dec):
            q = Query(
                table="PhotoObjAll",
                predicate=RadialPredicate("ra", "dec", ra, dec, 6.0),
                aggregates=[AggregateSpec("avg", "r_mag")],
            )
            approx = estimator.estimate(q, layer).estimates["avg(r_mag)"]
            exact = sky_engine.execute_exact(q).scalar("avg(r_mag)")
            return approx, exact

        a_est, a_exact = region_mean(150.0, 10.0)
        b_est, b_exact = region_mean(205.0, 40.0)
        contrast = subtract(a_est, b_est)
        assert contrast.contains(a_exact - b_exact)


class TestValueErrorPropagation:
    """Deterministic value-error bounds ride every combinator.

    Two properties pin the honesty contract of the tiered store
    (ISSUE: CI widths must be monotone non-decreasing in the injected
    bound, and collapse to today's widths at bound 0).
    """

    def est_ve(self, value, se, ve):
        return Estimate(value, se, 0.95, "test", 100, 1000, value_error=ve)

    def test_zero_bound_collapses_to_todays_widths(self):
        a, b = est(10.0, 2.0), est(4.0, 1.0)
        pairs = [
            (scale(a, 3.0), scale(self.est_ve(10.0, 2.0, 0.0), 3.0)),
            (add(a, b), add(self.est_ve(10.0, 2.0, 0.0), b)),
            (multiply(a, b), multiply(a, self.est_ve(4.0, 1.0, 0.0))),
            (ratio(a, b), ratio(self.est_ve(10.0, 2.0, 0.0), b)),
        ]
        for plain, with_zero in pairs:
            assert with_zero.value_error == 0.0
            assert with_zero.half_width == plain.half_width

    def test_combinators_propagate_nonzero_bounds(self):
        a = self.est_ve(10.0, 2.0, 0.5)
        b = self.est_ve(4.0, 1.0, 0.25)
        assert scale(a, -3.0).value_error == pytest.approx(1.5)
        assert add(a, b).value_error == pytest.approx(0.75)
        assert subtract(a, b).value_error == pytest.approx(0.75)
        # |a|·ve_b + |b|·ve_a + ve_a·ve_b
        assert multiply(a, b).value_error == pytest.approx(
            10.0 * 0.25 + 4.0 * 0.5 + 0.5 * 0.25
        )
        out = ratio(a, b)
        expected = (0.5 + 2.5 * 0.25) / (4.0 - 0.25)
        assert out.value_error == pytest.approx(expected)

    def test_ratio_bound_swallowing_denominator_is_infinite(self):
        out = ratio(self.est_ve(10.0, 2.0, 0.5), self.est_ve(1.0, 0.1, 1.0))
        assert out.value_error == math.inf


@st.composite
def bound_pairs(draw):
    """Two bounds with lo <= hi, plus base estimate ingredients."""
    lo = draw(st.floats(0.0, 10.0, allow_nan=False))
    hi = draw(st.floats(0.0, 10.0, allow_nan=False))
    value = draw(st.floats(-100.0, 100.0, allow_nan=False))
    se = draw(st.floats(0.0, 10.0, allow_nan=False))
    return min(lo, hi), max(lo, hi), value, se


class TestMonotoneWidths:
    """hypothesis: widening the injected bound never narrows a CI."""

    @given(bound_pairs(), bound_pairs())
    @settings(max_examples=200, deadline=None)
    def test_widths_monotone_in_value_error(self, pa, pb):
        lo_a, hi_a, value_a, se_a = pa
        lo_b, hi_b, value_b, se_b = pb
        narrow_a = Estimate(value_a, se_a, 0.95, "t", 100, 1000, value_error=lo_a)
        wide_a = Estimate(value_a, se_a, 0.95, "t", 100, 1000, value_error=hi_a)
        narrow_b = Estimate(value_b, se_b, 0.95, "t", 100, 1000, value_error=lo_b)
        wide_b = Estimate(value_b, se_b, 0.95, "t", 100, 1000, value_error=hi_b)
        assert wide_a.half_width >= narrow_a.half_width

        combinators = [
            lambda x, y: scale(x, 2.5),
            add,
            subtract,
            multiply,
        ]
        for combine in combinators:
            narrow = combine(narrow_a, narrow_b)
            wide = combine(wide_a, wide_b)
            assert wide.value_error >= narrow.value_error
            assert wide.half_width >= narrow.half_width

    @given(bound_pairs(), bound_pairs())
    @settings(max_examples=200, deadline=None)
    def test_ratio_width_monotone_in_value_error(self, pa, pb):
        lo_a, hi_a, value_a, se_a = pa
        lo_b, hi_b, _, se_b = pb
        den_value = 50.0  # fixed away from zero; zero cases are inf anyway
        narrow = ratio(
            Estimate(value_a, se_a, 0.95, "t", 100, 1000, value_error=lo_a),
            Estimate(den_value, se_b, 0.95, "t", 100, 1000, value_error=lo_b),
        )
        wide = ratio(
            Estimate(value_a, se_a, 0.95, "t", 100, 1000, value_error=hi_a),
            Estimate(den_value, se_b, 0.95, "t", 100, 1000, value_error=hi_b),
        )
        assert wide.value_error >= narrow.value_error

    @given(st.floats(0.0, 5.0, allow_nan=False))
    @settings(max_examples=100, deadline=None)
    def test_exact_at_zero_for_every_combinator(self, se):
        a = Estimate(10.0, se, 0.95, "t", 100, 1000)
        b = Estimate(4.0, se, 0.95, "t", 100, 1000)
        for out in (scale(a, 2.0), add(a, b), subtract(a, b),
                    multiply(a, b), ratio(a, b), selectivity(a, b)):
            assert out.value_error == 0.0
            assert out.half_width == out.z * out.se
