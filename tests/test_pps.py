"""Tests for fixed-size systematic πps sampling."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SamplingError
from repro.sampling.pps import pps_inclusion_probabilities, systematic_pps_sample


class TestInclusionProbabilities:
    def test_sum_equals_n(self, rng):
        masses = rng.uniform(0.1, 5.0, 1000)
        pis = pps_inclusion_probabilities(masses, 100)
        assert pis.sum() == pytest.approx(100.0)

    def test_proportional_when_uncapped(self, rng):
        masses = rng.uniform(1.0, 2.0, 1000)
        pis = pps_inclusion_probabilities(masses, 50)
        ratio = pis / masses
        np.testing.assert_allclose(ratio, ratio[0])

    def test_capping_iterates_correctly(self):
        masses = np.array([100.0, 1.0, 1.0, 1.0, 1.0])
        pis = pps_inclusion_probabilities(masses, 3)
        assert pis[0] == 1.0
        assert pis[1:].sum() == pytest.approx(2.0)
        np.testing.assert_allclose(pis[1:], 0.5)

    def test_cascading_caps(self):
        # after capping the first, the second also exceeds 1
        masses = np.array([1000.0, 100.0, 1.0, 1.0, 1.0, 1.0])
        pis = pps_inclusion_probabilities(masses, 4)
        assert pis[0] == pis[1] == 1.0
        assert pis[2:].sum() == pytest.approx(2.0)

    def test_all_equal_masses_reduce_to_uniform(self):
        pis = pps_inclusion_probabilities(np.full(10, 3.0), 4)
        np.testing.assert_allclose(pis, 0.4)

    def test_all_zero_masses_spread_uniformly(self):
        pis = pps_inclusion_probabilities(np.zeros(10), 4)
        np.testing.assert_allclose(pis, 0.4)

    def test_zero_mass_items_excluded_when_others_exist(self):
        masses = np.array([0.0, 1.0, 1.0, 0.0])
        pis = pps_inclusion_probabilities(masses, 2)
        np.testing.assert_allclose(pis, [0.0, 1.0, 1.0, 0.0])

    def test_n_equals_population_gives_all_ones(self, rng):
        masses = rng.uniform(0.1, 5.0, 20)
        pis = pps_inclusion_probabilities(masses, 20)
        np.testing.assert_allclose(pis, 1.0)

    def test_validation(self):
        with pytest.raises(SamplingError, match="one-dimensional"):
            pps_inclusion_probabilities(np.zeros((2, 2)), 1)
        with pytest.raises(SamplingError, match="non-negative"):
            pps_inclusion_probabilities(np.array([-1.0]), 1)
        with pytest.raises(SamplingError, match="cannot draw"):
            pps_inclusion_probabilities(np.ones(3), 4)

    @given(
        masses=st.lists(st.floats(0.01, 100.0), min_size=5, max_size=100),
        fraction=st.floats(0.05, 0.95),
    )
    @settings(max_examples=60, deadline=None)
    def test_invariants(self, masses, fraction):
        masses = np.array(masses)
        n = max(1, int(fraction * masses.shape[0]))
        pis = pps_inclusion_probabilities(masses, n)
        assert pis.sum() == pytest.approx(n, rel=1e-9)
        assert (pis >= 0).all() and (pis <= 1.0 + 1e-12).all()
        # monotone in mass: a heavier item never gets a smaller π
        order = np.argsort(masses)
        assert (np.diff(pis[order]) >= -1e-9).all()


class TestSystematicSample:
    def test_fixed_size(self, rng):
        masses = rng.uniform(0.1, 10.0, 2000)
        for seed in range(5):
            indices, pis = systematic_pps_sample(masses, 150, rng=seed)
            assert indices.shape[0] == 150
            assert np.unique(indices).shape[0] == 150

    def test_returned_pis_match_global_computation(self, rng):
        masses = rng.uniform(0.1, 10.0, 500)
        indices, pis = systematic_pps_sample(masses, 50, rng=0)
        expected = pps_inclusion_probabilities(masses, 50)
        np.testing.assert_allclose(pis, expected[indices])

    def test_certain_items_always_selected(self):
        masses = np.array([1000.0] + [1.0] * 99)
        for seed in range(10):
            indices, _ = systematic_pps_sample(masses, 10, rng=seed)
            assert 0 in indices

    def test_empirical_inclusion_matches_pi(self, rng):
        """The defining property: item i appears with frequency π_i."""
        masses = np.concatenate([np.full(50, 4.0), np.full(450, 1.0)])
        pis = pps_inclusion_probabilities(masses, 50)
        hits = np.zeros(500)
        runs = 400
        for seed in range(runs):
            indices, _ = systematic_pps_sample(masses, 50, rng=seed)
            hits[indices] += 1
        freq = hits / runs
        # compare class-average frequencies (tight: systematic πps)
        assert freq[:50].mean() == pytest.approx(pis[:50].mean(), abs=0.03)
        assert freq[50:].mean() == pytest.approx(pis[50:].mean(), abs=0.02)

    def test_ht_estimate_from_pps_sample_is_unbiased(self, rng):
        from repro.stats.estimators import ht_sum

        values = rng.uniform(10, 20, 1000)
        masses = rng.uniform(0.5, 3.0, 1000)
        estimates = []
        for seed in range(200):
            indices, pis = systematic_pps_sample(masses, 100, rng=seed)
            estimates.append(ht_sum(values[indices], pis).value)
        assert np.mean(estimates) == pytest.approx(values.sum(), rel=0.01)
