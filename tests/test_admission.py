"""Tests for admission control and the robustness satellites.

The overload guarantees pinned here:

* **Byte-identity for admitted queries** — admission changes *when* a
  query runs, never its answer or charge: results under load equal an
  unloaded run exactly.
* **Structured sheds** — a full queue (or quota, or shutdown) answers
  with a :class:`RejectedQuery` carrying reason and retry-after
  advice, never a silent hang or an opaque timeout.
* **No starvation** — popularity-first dispatch is tempered by
  unbounded linear aging, so a queued query on an unpopular table
  monotonically gains priority and eventually dispatches.
* **Honest degradation** — under pressure a query runs coarser, and
  its outcome says so (``degraded=True``); exact contracts are never
  coarsened.
* **Failure observability** — a background strict miss is counted per
  server and per session even if nobody ever calls ``result()``.
* **Settled handles, always** — worker death mid-drain, cancel racing
  admission, and timed shutdown all leave every handle settled; no
  caller blocks forever.
"""

from __future__ import annotations

import threading
import time
from types import SimpleNamespace

import pytest

from repro.columnstore import AggregateSpec, Query
from repro.columnstore.expressions import RadialPredicate
from repro.core.admission import (
    MAX_INFLIGHT_ENV,
    QUEUE_DEPTH_ENV,
    AdmissionController,
    RejectedQuery,
    admission_from_env,
)
from repro.core.contracts import Contract
from repro.core.engine import SciBorq
from repro.core.handle import QueryHandle
from repro.core.server import SciBorqServer, ShutdownReport
from repro.core.shards import ShardPoolStats
from repro.errors import OverloadedError, SessionError
from repro.skyserver.generator import SkyGenerator, build_skyserver
from repro.skyserver.schema import DEC_RANGE, RA_RANGE, create_skyserver_catalog


def make_engine() -> SciBorq:
    """A deterministic engine; two calls produce identical state."""
    engine = SciBorq(
        create_skyserver_catalog(),
        interest_attributes={"ra": RA_RANGE, "dec": DEC_RANGE},
        rng=801,
    )
    engine.create_hierarchy(
        "PhotoObjAll", policy="uniform", layer_sizes=(5_000, 500)
    )
    build_skyserver(
        30_000, generator=SkyGenerator(rng=802), loader=engine.loader
    )
    return engine


def cone(ra: float, radius: float) -> Query:
    return Query(
        table="PhotoObjAll",
        predicate=RadialPredicate("ra", "dec", ra, 10.0, radius),
        aggregates=[AggregateSpec("count")],
    )


def fake_session(session_id: int, name: str, weight: float = 1.0):
    """The duck the controller needs: id, name, weight."""
    return SimpleNamespace(session_id=session_id, name=name, weight=weight)


def fake_query(table: str):
    return SimpleNamespace(table=table)


class FakeClock:
    """Injectable monotonic seconds, advanced by hand."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


# ----------------------------------------------------------------------
# controller unit tests (deterministic, fake clock, no engine)
# ----------------------------------------------------------------------
class TestAdmissionController:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            AdmissionController(max_inflight=0)
        with pytest.raises(ValueError):
            AdmissionController(queue_depth=-1)
        with pytest.raises(ValueError):
            AdmissionController(per_session_limit=0)
        with pytest.raises(ValueError):
            AdmissionController(degrade_threshold=1.5)
        with pytest.raises(ValueError):
            AdmissionController(degrade_factor=1.0)
        with pytest.raises(ValueError):
            AdmissionController(age_rate=-1.0)
        with pytest.raises(ValueError):
            AdmissionController().admit(
                fake_session(0, "s"), fake_query("t"), Contract(), kind="wat"
            )

    def test_queue_full_sheds_structurally(self):
        clock = FakeClock()
        ctrl = AdmissionController(
            max_inflight=1, queue_depth=1, degrade_threshold=None, clock=clock
        )
        user = fake_session(0, "alice")
        # slot + queue: both admitted (ticket returned, no exception)
        ctrl.admit(user, fake_query("T"), Contract())
        ctrl.admit(user, fake_query("T"), Contract())
        with pytest.raises(OverloadedError) as caught:
            ctrl.admit(user, fake_query("T"), Contract())
        rejection = caught.value.rejection
        assert isinstance(rejection, RejectedQuery)
        assert rejection.reason == "queue_full"
        assert rejection.session_name == "alice"
        assert rejection.retry_after > 0
        assert rejection.queued == 2
        assert "retry after" in rejection.describe()
        stats = ctrl.stats
        assert stats.submitted == 3
        assert stats.shed_queue_full == 1
        assert stats.shed == 1

    def test_free_slots_never_shed(self):
        """queue_depth=0 still admits up to max_inflight — the bound
        counts waiting *beyond* free slots."""
        ctrl = AdmissionController(
            max_inflight=2, queue_depth=0, degrade_threshold=None
        )
        user = fake_session(0, "u")
        ctrl.admit(user, fake_query("T"), Contract())
        ctrl.admit(user, fake_query("T"), Contract())
        with pytest.raises(OverloadedError):
            ctrl.admit(user, fake_query("T"), Contract())

    def test_session_quota_sheds_only_the_hog(self):
        ctrl = AdmissionController(
            max_inflight=1,
            queue_depth=8,
            per_session_limit=2,
            degrade_threshold=None,
        )
        hog = fake_session(0, "hog")
        other = fake_session(1, "other")
        ctrl.admit(hog, fake_query("T"), Contract())
        ctrl.admit(hog, fake_query("T"), Contract())
        with pytest.raises(OverloadedError) as caught:
            ctrl.admit(hog, fake_query("T"), Contract())
        assert caught.value.rejection.reason == "session_quota"
        # the other tenant is still admitted
        ctrl.admit(other, fake_query("T"), Contract())
        assert ctrl.stats.shed_session_quota == 1

    def test_aging_beats_popularity(self):
        """The no-starvation guarantee: a queued query's age term is
        unbounded, so it eventually outranks any stream of *fresh*
        popular arrivals — a convoy can delay it, never bury it."""
        clock = FakeClock()
        ctrl = AdmissionController(
            max_inflight=1,
            queue_depth=16,
            degrade_threshold=None,
            age_rate=10.0,
            clock=clock,
        )
        user = fake_session(0, "u")
        starved, _ = ctrl.admit(user, fake_query("cold"), Contract())
        clock.advance(2.0)  # starved for two seconds
        # a fresh convoy on the popular table: popularity boost ~5,
        # age 0 — the starved query's age term (20) dominates
        for _ in range(5):
            ctrl.admit(user, fake_query("hot"), Contract())
        granted = ctrl.take(timeout=0)
        assert granted is starved
        ctrl.release(granted)

    def test_popularity_prefers_convoys_when_fresh(self):
        clock = FakeClock()
        ctrl = AdmissionController(
            max_inflight=1, queue_depth=16, degrade_threshold=None, clock=clock
        )
        user = fake_session(0, "u")
        ctrl.admit(user, fake_query("lonely"), Contract())
        ctrl.admit(user, fake_query("busy"), Contract())
        ctrl.admit(user, fake_query("busy"), Contract())
        granted = ctrl.take(timeout=0)
        assert granted.query.table == "busy"

    def test_session_weight_buys_position(self):
        clock = FakeClock()
        ctrl = AdmissionController(
            max_inflight=1, queue_depth=8, degrade_threshold=None, clock=clock
        )
        light = fake_session(0, "light", weight=1.0)
        heavy = fake_session(1, "heavy", weight=5.0)
        ctrl.admit(light, fake_query("A"), Contract())
        ctrl.admit(heavy, fake_query("B"), Contract())
        granted = ctrl.take(timeout=0)
        assert granted.session is heavy

    def test_degradation_coarsens_and_marks(self):
        ctrl = AdmissionController(
            max_inflight=1,
            queue_depth=1,
            degrade_threshold=0.5,
            degrade_factor=4.0,
        )
        user = fake_session(0, "u")
        contract = Contract.within_error(0.05) & Contract.within_budget(800)
        ticket, effective = ctrl.admit(user, fake_query("T"), contract)
        assert ticket.degraded
        assert effective.max_relative_error == pytest.approx(0.2)
        assert effective.time_budget == pytest.approx(200)
        assert not effective.strict
        assert ctrl.stats.degraded == 1

    def test_strict_contracts_degrade_to_best_effort(self):
        """Shed-or-degrade must never become an unexpected hard error:
        coarsening drops strictness."""
        ctrl = AdmissionController(
            max_inflight=1, queue_depth=1, degrade_threshold=0.5
        )
        strict = Contract.within_error(0.01).strictly()
        _, effective = ctrl.admit(
            fake_session(0, "u"), fake_query("T"), strict
        )
        assert not effective.strict

    def test_exact_contracts_are_never_degraded(self):
        ctrl = AdmissionController(
            max_inflight=1, queue_depth=1, degrade_threshold=0.5
        )
        exact = Contract.exact()
        ticket, effective = ctrl.admit(
            fake_session(0, "u"), fake_query("T"), exact
        )
        assert not ticket.degraded
        assert effective is exact

    def test_unconstrained_contracts_have_nothing_to_coarsen(self):
        ctrl = AdmissionController(
            max_inflight=1, queue_depth=1, degrade_threshold=0.5
        )
        plain = Contract()
        ticket, effective = ctrl.admit(
            fake_session(0, "u"), fake_query("T"), plain
        )
        assert not ticket.degraded
        assert effective is plain

    def test_retry_after_tracks_observed_run_time(self):
        clock = FakeClock()
        ctrl = AdmissionController(
            max_inflight=1, queue_depth=1, degrade_threshold=None, clock=clock
        )
        user = fake_session(0, "u")
        ctrl.admit(user, fake_query("T"), Contract())
        granted = ctrl.take(timeout=0)
        clock.advance(2.0)  # the query "ran" for two seconds
        ctrl.release(granted)
        ctrl.admit(user, fake_query("T"), Contract())
        ctrl.take(timeout=0)
        ctrl.admit(user, fake_query("T"), Contract())  # fills the queue
        with pytest.raises(OverloadedError) as caught:
            ctrl.admit(user, fake_query("T"), Contract())
        # one queued ahead + this one, at ~2s per slot
        assert caught.value.rejection.retry_after >= 2.0

    def test_release_is_idempotent(self):
        ctrl = AdmissionController(max_inflight=1, degrade_threshold=None)
        ctrl.admit(fake_session(0, "u"), fake_query("T"), Contract())
        ticket = ctrl.take(timeout=0)
        ctrl.release(ticket)
        ctrl.release(ticket)
        stats = ctrl.stats
        assert stats.completed == 1
        assert stats.inflight == 0

    def test_close_evicts_waiting_and_unblocks_take(self):
        ctrl = AdmissionController(
            max_inflight=1, queue_depth=4, degrade_threshold=None
        )
        user = fake_session(0, "u")
        ctrl.admit(user, fake_query("T"), Contract())
        granted = ctrl.take(timeout=0)
        ctrl.admit(user, fake_query("T"), Contract())
        evicted = ctrl.close()
        assert len(evicted) == 1
        assert ctrl.stats.shed_shutdown == 1
        with pytest.raises(OverloadedError) as caught:
            ctrl.admit(user, fake_query("T"), Contract())
        assert caught.value.rejection.reason == "shutdown"
        ctrl.release(granted)  # in-flight work still releases cleanly
        assert ctrl.take(timeout=0) is None

    def test_queue_seconds_accounting(self):
        clock = FakeClock()
        ctrl = AdmissionController(
            max_inflight=1, queue_depth=4, degrade_threshold=None, clock=clock
        )
        user = fake_session(0, "u")
        ticket, _ = ctrl.admit(user, fake_query("T"), Contract())
        clock.advance(0.5)
        granted = ctrl.take(timeout=0)
        assert granted is ticket
        assert ticket.queue_seconds == pytest.approx(0.5)
        stats = ctrl.stats
        assert stats.max_queue_seconds == pytest.approx(0.5)
        assert stats.mean_queue_seconds == pytest.approx(0.5)
        assert "queue wait" in stats.describe()


class TestAdmissionFromEnv:
    def test_absent_environment_means_off(self, monkeypatch):
        monkeypatch.delenv(MAX_INFLIGHT_ENV, raising=False)
        monkeypatch.delenv(QUEUE_DEPTH_ENV, raising=False)
        assert admission_from_env() is None

    def test_environment_configures_controller(self, monkeypatch):
        monkeypatch.setenv(MAX_INFLIGHT_ENV, "3")
        monkeypatch.setenv(QUEUE_DEPTH_ENV, "17")
        ctrl = admission_from_env()
        assert ctrl.max_inflight == 3
        assert ctrl.queue_depth == 17

    def test_garbage_fails_loudly(self, monkeypatch):
        monkeypatch.setenv(MAX_INFLIGHT_ENV, "lots")
        with pytest.raises(ValueError):
            admission_from_env()

    def test_server_consults_environment(self, monkeypatch):
        monkeypatch.setenv(MAX_INFLIGHT_ENV, "2")
        server = SciBorqServer(make_engine(), max_workers=2)
        try:
            assert server.admission is not None
            assert server.admission.max_inflight == 2
        finally:
            server.shutdown()


# ----------------------------------------------------------------------
# server integration
# ----------------------------------------------------------------------
class TestServerAdmission:
    def test_admitted_results_byte_identical_to_unloaded(self):
        """Admission changes scheduling, never answers or charges."""
        specs = [(150.0, 5.0), (170.0, 3.0), (200.0, 8.0), (130.0, 6.0)]
        contract = Contract.within_error(0.1)

        unloaded = {}
        with SciBorqServer(make_engine(), admission=False) as server:
            session = server.open_session("solo")
            for ra, radius in specs:
                outcome = session.execute(cone(ra, radius), contract)
                unloaded[(ra, radius)] = (
                    outcome.total_cost,
                    outcome.achieved_error,
                    outcome.result.estimates["count(*)"].value,
                )

        ctrl = AdmissionController(
            max_inflight=2, queue_depth=32, degrade_threshold=None
        )
        with SciBorqServer(
            make_engine(), max_workers=2, admission=ctrl
        ) as server:
            session = server.open_session("loaded")
            handles = [
                session.submit(cone(ra, radius), contract)
                for ra, radius in specs
            ]
            for (ra, radius), handle in zip(specs, handles):
                outcome = handle.result()
                assert not outcome.degraded
                assert unloaded[(ra, radius)] == (
                    outcome.total_cost,
                    outcome.achieved_error,
                    outcome.result.estimates["count(*)"].value,
                )
            stats = server.admission.stats
            assert stats.admitted == len(specs)
            assert stats.shed == 0

    def test_submit_many_partial_admission(self):
        """Queue-full mid-batch: handles for the admitted, structured
        rejections in the shed slots — never an exception that voids
        the batch."""
        ctrl = AdmissionController(
            max_inflight=1, queue_depth=1, degrade_threshold=None
        )
        with SciBorqServer(
            make_engine(), max_workers=1, admission=ctrl
        ) as server:
            session = server.open_session("burst")
            slots = session.submit_many(
                [cone(150.0, 5.0)] * 6, contract=Contract.within_error(0.1)
            )
            handles = [s for s in slots if isinstance(s, QueryHandle)]
            sheds = [s for s in slots if isinstance(s, RejectedQuery)]
            assert len(slots) == 6
            assert len(handles) >= 2  # slot + queue at minimum
            assert sheds, "an overrun batch must shed structurally"
            for rejection in sheds:
                assert rejection.reason == "queue_full"
                assert rejection.retry_after > 0
            for handle in handles:
                outcome = handle.result()
                assert outcome.result is not None

    def test_submit_raises_overloaded_with_rejection(self):
        ctrl = AdmissionController(
            max_inflight=1, queue_depth=0, degrade_threshold=None
        )
        with SciBorqServer(
            make_engine(), max_workers=1, admission=ctrl
        ) as server:
            session = server.open_session("greedy")
            first = session.submit(cone(150.0, 5.0))
            backlog = []
            with pytest.raises(OverloadedError) as caught:
                # the single slot may drain between submits; keep
                # pushing until one submission finds it occupied
                for _ in range(50):
                    backlog.append(session.submit(cone(150.0, 5.0)))
            assert caught.value.rejection.reason == "queue_full"
            first.result()
            for handle in backlog:
                handle.result()

    def test_degraded_outcome_is_marked(self):
        ctrl = AdmissionController(
            max_inflight=1,
            queue_depth=1,
            degrade_threshold=0.5,
            degrade_factor=4.0,
        )
        with SciBorqServer(
            make_engine(), max_workers=1, admission=ctrl
        ) as server:
            session = server.open_session("pressured")
            handle = session.submit(
                cone(150.0, 5.0), contract=Contract.within_error(0.05)
            )
            outcome = handle.result()
            assert outcome.degraded
            assert "DEGRADED" in outcome.describe()
            assert server.admission.stats.degraded == 1

    def test_blocking_execute_rides_the_same_queue(self):
        ctrl = AdmissionController(max_inflight=2, degrade_threshold=None)
        with SciBorqServer(
            make_engine(), max_workers=2, admission=ctrl
        ) as server:
            session = server.open_session("sync")
            outcome = session.execute(
                cone(150.0, 5.0), contract=Contract.within_error(0.1)
            )
            assert outcome.result is not None
            assert not outcome.degraded
            stats = server.admission.stats
            assert stats.submitted == 1
            assert stats.completed == 1

    def test_queue_time_split_in_progress_updates(self):
        with SciBorqServer(make_engine(), admission=True) as server:
            session = server.open_session("timed")
            handle = session.submit(
                cone(150.0, 5.0), contract=Contract.within_error(0.1)
            )
            handle.result()
            assert handle.queue_seconds is not None
            assert handle.queue_seconds >= 0
            assert handle.run_seconds is not None
            for update in handle.updates:
                assert update.queue_seconds is not None
                assert update.run_seconds is not None
                assert "queued=" in update.describe()

    def test_lazy_handles_carry_no_queue_split(self):
        """Engine-level (unqueued) handles are byte-identical to the
        pre-admission behaviour: no timing fields."""
        engine = make_engine()
        handle = engine.submit(cone(150.0, 5.0), Contract.within_error(0.1))
        handle.result()
        assert handle.queue_seconds is None
        for update in handle.updates:
            assert update.queue_seconds is None
            assert update.run_seconds is None
            assert "queued=" not in update.describe()

    def test_no_starvation_under_convoy_pressure(self):
        """Every admitted query completes — including the lone query
        whose table never forms a convoy."""
        ctrl = AdmissionController(
            max_inflight=1,
            queue_depth=64,
            degrade_threshold=None,
            age_rate=10.0,
        )
        with SciBorqServer(
            make_engine(), max_workers=1, admission=ctrl
        ) as server:
            convoy = server.open_session("convoy")
            loner = server.open_session("loner")
            lone_handle = loner.submit(
                cone(230.0, 2.0), contract=Contract.within_error(0.5)
            )
            convoy_handles = [
                convoy.submit(
                    cone(150.0, 5.0), contract=Contract.within_error(0.5)
                )
                for _ in range(12)
            ]
            assert lone_handle.result().result is not None
            for handle in convoy_handles:
                assert handle.result().result is not None
            stats = server.admission.stats
            assert stats.admitted == 13
            assert stats.shed == 0
            assert stats.inflight == 0 and stats.queued == 0

    def test_summary_includes_admission_and_failure_lines(self):
        with SciBorqServer(make_engine(), admission=True) as server:
            session = server.open_session("s")
            session.execute(cone(150.0, 5.0), Contract.within_error(0.1))
            text = server.summary()
            assert "admission:" in text
            assert "failed" in text


# ----------------------------------------------------------------------
# failure accounting (satellite: no silently swallowed exceptions)
# ----------------------------------------------------------------------
class TestFailureAccounting:
    def test_strict_miss_on_submit_is_observable_server_side(self):
        """The regression the ISSUE names: a background strict miss
        must be countable without anyone calling ``result()``."""
        with SciBorqServer(make_engine(), max_workers=1) as server:
            session = server.open_session(
                "strict",
                strict=True,
                max_relative_error=1e-12,
                time_budget=600,  # only the smallest layer fits
            )
            handle = session.submit(cone(150.0, 5.0))
            # wait for the background drain — via the handle's done
            # event, not result(), which would re-raise
            assert handle._done.wait(10.0)
            deadline = time.monotonic() + 5.0
            while server.queries_failed == 0 and time.monotonic() < deadline:
                time.sleep(0.01)
            assert server.queries_failed == 1
            assert session.report().failures == 1
            assert "1 failed" in server.summary()
            # the failure still reaches a caller who does ask
            with pytest.raises(Exception):
                handle.result()

    def test_blocking_failures_are_counted_too(self):
        from repro.errors import QualityBoundError

        with SciBorqServer(make_engine()) as server:
            session = server.open_session("strict", strict=True)
            with pytest.raises(QualityBoundError):
                session.execute(
                    cone(150.0, 5.0),
                    max_relative_error=1e-12,
                    time_budget=600,
                )
            assert server.queries_failed == 1
            assert session.report().failures == 1

    def test_admission_counts_failed_releases(self):
        ctrl = AdmissionController(max_inflight=1, degrade_threshold=None)
        with SciBorqServer(
            make_engine(), max_workers=1, admission=ctrl
        ) as server:
            session = server.open_session(
                "strict",
                strict=True,
                max_relative_error=1e-12,
                time_budget=600,
            )
            handle = session.submit(cone(150.0, 5.0))
            assert handle._done.wait(10.0)
            deadline = time.monotonic() + 5.0
            while (
                server.admission.stats.failed == 0
                and time.monotonic() < deadline
            ):
                time.sleep(0.01)
            assert server.admission.stats.failed == 1


# ----------------------------------------------------------------------
# fault injection (satellite: threads die, cancels race, queues fill)
# ----------------------------------------------------------------------
class TestFaultInjection:
    def test_worker_death_mid_drain_settles_the_handle(self, monkeypatch):
        """A drain that blows up in the worker must fail the handle
        (caller unblocked) and count the failure — never hang."""

        def dying_drain(self):
            raise RuntimeError("worker died mid-drain")

        with SciBorqServer(make_engine(), max_workers=1) as server:
            session = server.open_session("doomed")
            monkeypatch.setattr(QueryHandle, "drain", dying_drain)
            handle = session.submit(cone(150.0, 5.0))
            with pytest.raises(RuntimeError, match="worker died"):
                handle.result(timeout=10.0)
            monkeypatch.undo()
            deadline = time.monotonic() + 5.0
            while server.queries_failed == 0 and time.monotonic() < deadline:
                time.sleep(0.01)
            assert server.queries_failed == 1
            # the server survives: the next query is unaffected
            ok = session.submit(cone(150.0, 5.0), Contract.within_error(0.1))
            assert ok.result(timeout=10.0).result is not None

    def test_worker_death_releases_the_admission_slot(self, monkeypatch):
        def dying_drain(self):
            raise RuntimeError("worker died mid-drain")

        ctrl = AdmissionController(max_inflight=1, degrade_threshold=None)
        with SciBorqServer(
            make_engine(), max_workers=1, admission=ctrl
        ) as server:
            session = server.open_session("doomed")
            monkeypatch.setattr(QueryHandle, "drain", dying_drain)
            handle = session.submit(cone(150.0, 5.0))
            with pytest.raises(RuntimeError):
                handle.result(timeout=10.0)
            monkeypatch.undo()
            # the slot came back: a fresh query is admitted and runs
            ok = session.submit(cone(150.0, 5.0), Contract.within_error(0.1))
            assert ok.result(timeout=10.0).result is not None
            assert server.admission.stats.inflight == 0

    def test_cancel_racing_admission_still_settles(self):
        """Cancelling a handle that is still waiting in the admission
        queue settles it with a best-so-far answer, not a hang."""
        ctrl = AdmissionController(
            max_inflight=1, queue_depth=8, degrade_threshold=None
        )
        with SciBorqServer(
            make_engine(), max_workers=1, admission=ctrl
        ) as server:
            session = server.open_session("racer")
            ahead = [
                session.submit(
                    cone(150.0, 5.0), contract=Contract.within_error(0.2)
                )
                for _ in range(3)
            ]
            racer = session.submit(
                cone(170.0, 3.0), contract=Contract.within_error(0.2)
            )
            racer.request_cancel()  # likely still queued right now
            outcome = racer.result(timeout=10.0)
            assert outcome.result is not None  # first rung, at minimum
            for handle in ahead:
                handle.result(timeout=10.0)

    def test_shutdown_timeout_fails_a_wedged_drain(self):
        """satellite: ``shutdown(timeout=)`` — a drain that never
        finishes cannot hang shutdown; its handle is settled and the
        report says so."""
        release = threading.Event()
        real_drain = QueryHandle.drain

        def wedged_drain(self):
            release.wait(30.0)  # ignores cancel; simulates a wedge

        QueryHandle.drain = wedged_drain
        try:
            server = SciBorqServer(make_engine(), max_workers=1)
            session = server.open_session("wedged")
            handle = session.submit(cone(150.0, 5.0))
            started = time.monotonic()
            report = server.shutdown(wait=True, timeout=0.3)
            assert time.monotonic() - started < 10.0
            assert isinstance(report, ShutdownReport)
            assert report.cancelled == 1
            with pytest.raises(SessionError):
                handle.result(timeout=1.0)
        finally:
            QueryHandle.drain = real_drain
            release.set()

    def test_shutdown_evicts_queued_with_structured_rejection(self):
        release = threading.Event()
        real_drain = QueryHandle.drain

        def wedged_drain(self):
            release.wait(30.0)

        QueryHandle.drain = wedged_drain
        try:
            ctrl = AdmissionController(
                max_inflight=1, queue_depth=8, degrade_threshold=None
            )
            server = SciBorqServer(make_engine(), max_workers=2, admission=ctrl)
            session = server.open_session("queued")
            wedged = session.submit(cone(150.0, 5.0))
            backlog = [session.submit(cone(150.0, 5.0)) for _ in range(3)]
            report = server.shutdown(wait=True, timeout=0.3)
            assert report.evicted >= 1
            evicted_errors = 0
            for handle in backlog:
                try:
                    handle.result(timeout=1.0)
                except OverloadedError as exc:
                    assert exc.rejection.reason == "shutdown"
                    evicted_errors += 1
                except SessionError:
                    pass  # granted before close, then force-cancelled
            assert evicted_errors == report.evicted
            with pytest.raises((SessionError, OverloadedError)):
                wedged.result(timeout=1.0)
        finally:
            QueryHandle.drain = real_drain
            release.set()

    def test_shutdown_without_timeout_reports_and_is_idempotent(self):
        server = SciBorqServer(make_engine())
        session = server.open_session("s")
        handle = session.submit(cone(150.0, 5.0), Contract.within_error(0.1))
        report = server.shutdown(wait=True)
        assert isinstance(report, ShutdownReport)
        handle.result(timeout=1.0)  # drained before the pool stopped
        again = server.shutdown()
        assert again == ShutdownReport()


# ----------------------------------------------------------------------
# torn-counter guard (satellite: stats under concurrent mutation)
# ----------------------------------------------------------------------
class TestShardPoolStatsConcurrency:
    def test_concurrent_adds_never_lose_updates(self):
        stats = ShardPoolStats()
        per_thread, threads = 2_000, 8

        def bump():
            for _ in range(per_thread):
                stats.add(scatters=1, export_bytes=3)

        workers = [threading.Thread(target=bump) for _ in range(threads)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        assert stats.scatters == per_thread * threads
        assert stats.export_bytes == 3 * per_thread * threads

    def test_snapshot_is_a_consistent_copy(self):
        stats = ShardPoolStats()
        stats.add(scatters=2, declined=1, exports=1, export_bytes=100)
        view = stats.snapshot()
        stats.add(scatters=1)
        assert view.scatters == 2  # a copy, not a live reference
        assert "shard pool:" in view.describe()
