"""Tests for FK-consistent join synopses (Acharya et al., ref [3])."""

import numpy as np
import pytest

from repro.columnstore import AggregateSpec, Catalog, Executor, JoinSpec, Query, Table
from repro.columnstore.catalog import ForeignKey
from repro.errors import ImpressionError
from repro.sampling.join_synopsis import JoinSynopsis


@pytest.fixture
def star_catalog(rng) -> Catalog:
    catalog = Catalog()
    n = 2000
    catalog.add_table(
        Table.from_arrays(
            "fact",
            {
                "id": np.arange(n),
                "fk": rng.integers(0, 100, n),
                "v": rng.normal(10, 2, n),
            },
        )
    )
    catalog.add_table(
        Table.from_arrays(
            "dim", {"pk": np.arange(100), "w": rng.normal(0, 1, 100)}
        )
    )
    catalog.add_foreign_key(ForeignKey("fact", "fk", "dim", "pk"))
    return catalog


class TestRefresh:
    def test_dimension_rows_cover_sampled_keys(self, star_catalog, rng):
        synopsis = JoinSynopsis(star_catalog, "fact")
        sampled = rng.choice(2000, 150, replace=False)
        synopsis.refresh(sampled)
        fact = star_catalog.table("fact")
        dim = star_catalog.table("dim")
        needed = set(fact["fk"][sampled].tolist())
        provided = set(dim["pk"][synopsis.dimension_row_ids("dim")].tolist())
        assert needed == provided
        assert not synopsis.has_pending

    def test_join_on_synopsis_is_lossless(self, star_catalog, rng):
        synopsis = JoinSynopsis(star_catalog, "fact")
        sampled = rng.choice(2000, 100, replace=False)
        synopsis.refresh(sampled)
        syn_catalog = synopsis.to_catalog()
        result = Executor(syn_catalog).execute(
            Query(
                table="fact",
                joins=[JoinSpec("dim", "fk", "pk", ("w",))],
                aggregates=[AggregateSpec("count")],
            )
        )
        assert result.scalar("count(*)") == 100  # no dangling fact rows

    def test_pending_keys_resolved_by_later_refresh(self, rng):
        """The paper §3.3: joining tuples may arrive in later loads."""
        catalog = Catalog()
        catalog.add_table(
            Table.from_arrays(
                "fact", {"id": np.arange(10), "fk": np.arange(10)}
            )
        )
        catalog.add_table(
            Table.from_arrays("dim", {"pk": np.arange(5)})  # keys 5..9 missing
        )
        catalog.add_foreign_key(ForeignKey("fact", "fk", "dim", "pk"))
        synopsis = JoinSynopsis(catalog, "fact")
        synopsis.refresh(np.arange(10))
        assert synopsis.has_pending
        np.testing.assert_array_equal(
            synopsis.pending_keys("dim"), np.arange(5, 10)
        )
        catalog.table("dim").append_batch({"pk": np.arange(5, 10)})
        synopsis.refresh(np.arange(10))
        assert not synopsis.has_pending

    def test_row_ids_out_of_range_rejected(self, star_catalog):
        synopsis = JoinSynopsis(star_catalog, "fact")
        with pytest.raises(ImpressionError, match="exceed"):
            synopsis.refresh(np.array([999_999]))

    def test_empty_sample(self, star_catalog):
        synopsis = JoinSynopsis(star_catalog, "fact")
        synopsis.refresh(np.array([], dtype=np.int64))
        assert synopsis.size_rows() == 0


class TestMaterialise:
    def test_table_names_preserved(self, star_catalog, rng):
        synopsis = JoinSynopsis(star_catalog, "fact")
        synopsis.refresh(rng.choice(2000, 50, replace=False))
        tables = synopsis.materialise()
        assert set(tables) == {"fact", "dim"}
        assert tables["fact"].num_rows == 50

    def test_unknown_dimension_lookup(self, star_catalog):
        synopsis = JoinSynopsis(star_catalog, "fact")
        synopsis.refresh(np.arange(5))
        with pytest.raises(ImpressionError, match="not a dimension"):
            synopsis.dimension_row_ids("ghost")

    def test_size_rows_counts_everything(self, star_catalog, rng):
        synopsis = JoinSynopsis(star_catalog, "fact")
        sampled = rng.choice(2000, 50, replace=False)
        synopsis.refresh(sampled)
        assert synopsis.size_rows() == 50 + synopsis.dimension_row_ids("dim").shape[0]

    def test_correlation_preserved_vs_independent_sampling(self, rng):
        """The paper's reason for join synopses: independent per-table
        samples lose FK matches; the synopsis never does."""
        catalog = Catalog()
        n = 1000
        catalog.add_table(
            Table.from_arrays(
                "fact", {"id": np.arange(n), "fk": rng.integers(0, 500, n)}
            )
        )
        catalog.add_table(Table.from_arrays("dim", {"pk": np.arange(500)}))
        catalog.add_foreign_key(ForeignKey("fact", "fk", "dim", "pk"))
        sampled_fact = rng.choice(n, 100, replace=False)

        # independent 20% dimension sample: expect ~80% of joins broken
        independent_dim = rng.choice(500, 100, replace=False)
        fact_keys = catalog.table("fact")["fk"][sampled_fact]
        survived = np.isin(fact_keys, independent_dim).mean()
        assert survived < 0.5

        synopsis = JoinSynopsis(catalog, "fact")
        synopsis.refresh(sampled_fact)
        dim_keys = catalog.table("dim")["pk"][synopsis.dimension_row_ids("dim")]
        assert np.isin(fact_keys, dim_keys).all()
