"""Tests for hierarchy snapshots (save/restore across sessions)."""

import numpy as np
import pytest

from repro.core.persistence import (
    load_hierarchy,
    read_snapshot_metadata,
    save_hierarchy,
)
from repro.core.policy import UniformPolicy, build_hierarchy
from repro.errors import ImpressionError


@pytest.fixture
def populated(fresh_sky_engine):
    return fresh_sky_engine, fresh_sky_engine.hierarchy("PhotoObjAll")


class TestRoundtrip:
    def test_state_survives_save_load(self, populated, tmp_path):
        engine, hierarchy = populated
        path = save_hierarchy(hierarchy, tmp_path / "snap.npz")

        twin = build_hierarchy(
            "PhotoObjAll", UniformPolicy(layer_sizes=(5_000, 500)), rng=999
        )
        load_hierarchy(twin, path)
        for original, restored in zip(hierarchy.layers, twin.layers):
            np.testing.assert_array_equal(original.row_ids, restored.row_ids)
            np.testing.assert_allclose(
                original.inclusion_probabilities(),
                restored.inclusion_probabilities(),
            )
            assert restored.sampler.seen == original.sampler.seen

    def test_restored_hierarchy_answers_queries(self, populated, tmp_path):
        from repro.columnstore import AggregateSpec, Query
        from repro.columnstore.expressions import RadialPredicate
        from repro.core.bounded import BoundedQueryProcessor

        engine, hierarchy = populated
        path = save_hierarchy(hierarchy, tmp_path / "snap.npz")
        twin = build_hierarchy(
            "PhotoObjAll", UniformPolicy(layer_sizes=(5_000, 500)), rng=1000
        )
        load_hierarchy(twin, path)
        processor = BoundedQueryProcessor(engine.catalog, twin)
        outcome = processor.execute(
            Query(
                table="PhotoObjAll",
                predicate=RadialPredicate("ra", "dec", 150.0, 10.0, 5.0),
                aggregates=[AggregateSpec("count")],
            )
        )
        exact = engine.execute_exact(
            Query(
                table="PhotoObjAll",
                predicate=RadialPredicate("ra", "dec", 150.0, 10.0, 5.0),
                aggregates=[AggregateSpec("count")],
            )
        )
        estimate = outcome.result.estimates["count(*)"]
        assert estimate.value == pytest.approx(exact.scalar("count(*)"), rel=0.3)

    def test_metadata_readable_without_loading(self, populated, tmp_path):
        engine, hierarchy = populated
        path = save_hierarchy(hierarchy, tmp_path / "snap.npz")
        metadata = read_snapshot_metadata(path)
        assert metadata["base_table"] == "PhotoObjAll"
        assert [l["capacity"] for l in metadata["layers"]] == [5_000, 500]

    def test_suffix_appended_when_missing(self, populated, tmp_path):
        engine, hierarchy = populated
        path = save_hierarchy(hierarchy, tmp_path / "snap")
        assert path.suffix == ".npz" and path.exists()


class TestValidation:
    def test_wrong_base_table_rejected(self, populated, tmp_path):
        engine, hierarchy = populated
        path = save_hierarchy(hierarchy, tmp_path / "snap.npz")
        other = build_hierarchy(
            "Field", UniformPolicy(layer_sizes=(5_000, 500)), rng=1
        )
        with pytest.raises(ImpressionError, match="base table"):
            load_hierarchy(other, path)

    def test_wrong_depth_rejected(self, populated, tmp_path):
        engine, hierarchy = populated
        path = save_hierarchy(hierarchy, tmp_path / "snap.npz")
        shallow = build_hierarchy(
            "PhotoObjAll", UniformPolicy(layer_sizes=(5_000,)), rng=2
        )
        with pytest.raises(ImpressionError, match="layers"):
            load_hierarchy(shallow, path)

    def test_wrong_capacity_rejected(self, populated, tmp_path):
        engine, hierarchy = populated
        path = save_hierarchy(hierarchy, tmp_path / "snap.npz")
        mismatched = build_hierarchy(
            "PhotoObjAll", UniformPolicy(layer_sizes=(4_000, 400)), rng=3
        )
        with pytest.raises(ImpressionError, match="capacity mismatch"):
            load_hierarchy(mismatched, path)


class TestBiasedSnapshot:
    def test_pps_pis_survive_roundtrip(self, fresh_sky_engine, tmp_path):
        """A πps-rebuilt biased hierarchy keeps its exact πs across
        the snapshot (they are what the error bounds rest on)."""
        engine = fresh_sky_engine
        for _ in range(50):
            engine.planner.observe("ra", np.random.default_rng(5).normal(150, 3, 10))
            engine.interest.observe_values(
                "ra", np.random.default_rng(6).normal(150, 3, 10)
            )
        engine.create_hierarchy(
            "PhotoObjAll", policy="biased", layer_sizes=(4_000, 400)
        )
        engine.rebuild("PhotoObjAll")
        hierarchy = engine.hierarchy("PhotoObjAll")
        pis_before = hierarchy.layer(0).inclusion_probabilities()
        path = save_hierarchy(hierarchy, tmp_path / "biased.npz")

        from repro.core.policy import BiasedPolicy

        twin = build_hierarchy(
            "PhotoObjAll",
            BiasedPolicy(engine.interest, layer_sizes=(4_000, 400)),
            rng=7,
        )
        load_hierarchy(twin, path)
        np.testing.assert_allclose(
            twin.layer(0).inclusion_probabilities(), pis_before
        )
