"""Tests for hierarchy snapshots (save/restore across sessions)."""

import numpy as np
import pytest

from repro.core.persistence import (
    load_hierarchy,
    read_snapshot_metadata,
    save_hierarchy,
)
from repro.core.policy import UniformPolicy, build_hierarchy
from repro.errors import ImpressionError


@pytest.fixture
def populated(fresh_sky_engine):
    return fresh_sky_engine, fresh_sky_engine.hierarchy("PhotoObjAll")


class TestRoundtrip:
    def test_state_survives_save_load(self, populated, tmp_path):
        engine, hierarchy = populated
        path = save_hierarchy(hierarchy, tmp_path / "snap.npz")

        twin = build_hierarchy(
            "PhotoObjAll", UniformPolicy(layer_sizes=(5_000, 500)), rng=999
        )
        load_hierarchy(twin, path)
        for original, restored in zip(hierarchy.layers, twin.layers):
            np.testing.assert_array_equal(original.row_ids, restored.row_ids)
            np.testing.assert_allclose(
                original.inclusion_probabilities(),
                restored.inclusion_probabilities(),
            )
            assert restored.sampler.seen == original.sampler.seen

    def test_restored_hierarchy_answers_queries(self, populated, tmp_path):
        from repro.columnstore import AggregateSpec, Query
        from repro.columnstore.expressions import RadialPredicate
        from repro.core.bounded import BoundedQueryProcessor

        engine, hierarchy = populated
        path = save_hierarchy(hierarchy, tmp_path / "snap.npz")
        twin = build_hierarchy(
            "PhotoObjAll", UniformPolicy(layer_sizes=(5_000, 500)), rng=1000
        )
        load_hierarchy(twin, path)
        processor = BoundedQueryProcessor(engine.catalog, twin)
        outcome = processor.execute(
            Query(
                table="PhotoObjAll",
                predicate=RadialPredicate("ra", "dec", 150.0, 10.0, 5.0),
                aggregates=[AggregateSpec("count")],
            )
        )
        exact = engine.execute_exact(
            Query(
                table="PhotoObjAll",
                predicate=RadialPredicate("ra", "dec", 150.0, 10.0, 5.0),
                aggregates=[AggregateSpec("count")],
            )
        )
        estimate = outcome.result.estimates["count(*)"]
        assert estimate.value == pytest.approx(exact.scalar("count(*)"), rel=0.3)

    def test_metadata_readable_without_loading(self, populated, tmp_path):
        engine, hierarchy = populated
        path = save_hierarchy(hierarchy, tmp_path / "snap.npz")
        metadata = read_snapshot_metadata(path)
        assert metadata["base_table"] == "PhotoObjAll"
        assert [l["capacity"] for l in metadata["layers"]] == [5_000, 500]

    def test_suffix_appended_when_missing(self, populated, tmp_path):
        engine, hierarchy = populated
        path = save_hierarchy(hierarchy, tmp_path / "snap")
        assert path.suffix == ".npz" and path.exists()


class TestValidation:
    def test_wrong_base_table_rejected(self, populated, tmp_path):
        engine, hierarchy = populated
        path = save_hierarchy(hierarchy, tmp_path / "snap.npz")
        other = build_hierarchy(
            "Field", UniformPolicy(layer_sizes=(5_000, 500)), rng=1
        )
        with pytest.raises(ImpressionError, match="base table"):
            load_hierarchy(other, path)

    def test_wrong_depth_rejected(self, populated, tmp_path):
        engine, hierarchy = populated
        path = save_hierarchy(hierarchy, tmp_path / "snap.npz")
        shallow = build_hierarchy(
            "PhotoObjAll", UniformPolicy(layer_sizes=(5_000,)), rng=2
        )
        with pytest.raises(ImpressionError, match="layers"):
            load_hierarchy(shallow, path)

    def test_wrong_capacity_rejected(self, populated, tmp_path):
        engine, hierarchy = populated
        path = save_hierarchy(hierarchy, tmp_path / "snap.npz")
        mismatched = build_hierarchy(
            "PhotoObjAll", UniformPolicy(layer_sizes=(4_000, 400)), rng=3
        )
        with pytest.raises(ImpressionError, match="capacity mismatch"):
            load_hierarchy(mismatched, path)


class TestBiasedSnapshot:
    def test_pps_pis_survive_roundtrip(self, fresh_sky_engine, tmp_path):
        """A πps-rebuilt biased hierarchy keeps its exact πs across
        the snapshot (they are what the error bounds rest on)."""
        engine = fresh_sky_engine
        for _ in range(50):
            engine.planner.observe("ra", np.random.default_rng(5).normal(150, 3, 10))
            engine.interest.observe_values(
                "ra", np.random.default_rng(6).normal(150, 3, 10)
            )
        engine.create_hierarchy(
            "PhotoObjAll", policy="biased", layer_sizes=(4_000, 400)
        )
        engine.rebuild("PhotoObjAll")
        hierarchy = engine.hierarchy("PhotoObjAll")
        pis_before = hierarchy.layer(0).inclusion_probabilities()
        path = save_hierarchy(hierarchy, tmp_path / "biased.npz")

        from repro.core.policy import BiasedPolicy

        twin = build_hierarchy(
            "PhotoObjAll",
            BiasedPolicy(engine.interest, layer_sizes=(4_000, 400)),
            rng=7,
        )
        load_hierarchy(twin, path)
        np.testing.assert_allclose(
            twin.layer(0).inclusion_probabilities(), pis_before
        )


class TestFormatVersion:
    def test_snapshots_are_written_at_version_2(self, populated, tmp_path):
        from repro.core.persistence import FORMAT_VERSION

        engine, hierarchy = populated
        path = save_hierarchy(hierarchy, tmp_path / "snap.npz")
        assert FORMAT_VERSION == 2
        assert read_snapshot_metadata(path)["format_version"] == 2

    def test_unknown_version_rejected(self, populated, tmp_path):
        import json

        import numpy as np

        engine, hierarchy = populated
        path = save_hierarchy(hierarchy, tmp_path / "snap.npz")
        with np.load(path, allow_pickle=False) as archive:
            arrays = dict(archive)
        metadata = json.loads(arrays["metadata"].tobytes().decode("utf-8"))
        metadata["format_version"] = 99
        arrays["metadata"] = np.frombuffer(
            json.dumps(metadata).encode("utf-8"), dtype=np.uint8
        )
        np.savez(path, **arrays)
        with pytest.raises(ImpressionError, match="format 99 is not"):
            read_snapshot_metadata(path)


class TestColumnBlockStore:
    def test_anonymous_store_round_trips(self):
        from repro.core.persistence import ColumnBlockStore

        store = ColumnBlockStore()
        values = np.arange(64, dtype=np.float64)
        store.put("x#0", values)
        assert store.contains("x#0") and store.size_bytes == values.nbytes
        got = store.read("x#0", np.float64, 64)
        np.testing.assert_array_equal(np.asarray(got), values)
        store.close()

    def test_keys_are_write_once(self):
        from repro.core.persistence import ColumnBlockStore

        store = ColumnBlockStore()
        store.put("k", np.arange(4.0))
        with pytest.raises(ImpressionError, match="already spilled"):
            store.put("k", np.arange(4.0))

    def test_named_store_reopens_from_sidecar(self, tmp_path):
        from repro.core.persistence import ColumnBlockStore

        path = tmp_path / "blocks.bin"
        store = ColumnBlockStore(path)
        a = np.arange(32, dtype=np.float64)
        b = np.arange(16, dtype=np.int64)
        store.put("col@1#0", a)
        store.put("col@1#1", b)
        store.close()
        assert path.with_name("blocks.bin.blocks.json").exists()

        reopened = ColumnBlockStore(path)
        assert sorted(reopened.keys) == ["col@1#0", "col@1#1"]
        np.testing.assert_array_equal(
            np.asarray(reopened.read("col@1#0", np.float64)), a
        )
        np.testing.assert_array_equal(
            np.asarray(reopened.read("col@1#1", np.int64)), b
        )
        reopened.close()

    def test_dtype_mismatch_rejected(self):
        from repro.core.persistence import ColumnBlockStore

        store = ColumnBlockStore()
        store.put("k", np.arange(4, dtype=np.float64))
        with pytest.raises(ImpressionError, match="spilled as"):
            store.read("k", np.int32, 4)


class TestPartiallyColdRoundtrip:
    def test_restored_hierarchy_over_demoted_table_answers_identically(
        self, populated, tmp_path
    ):
        """Snapshot + demotion must not change an answer: the restored
        hierarchy over a partially-cold base table produces exactly the
        estimate the live hierarchy produced before the save."""
        from repro.columnstore import AggregateSpec, Query
        from repro.columnstore.expressions import RadialPredicate
        from repro.core.bounded import BoundedQueryProcessor

        engine, hierarchy = populated
        query = Query(
            table="PhotoObjAll",
            predicate=RadialPredicate("ra", "dec", 150.0, 10.0, 5.0),
            aggregates=[AggregateSpec("count")],
        )
        before = BoundedQueryProcessor(engine.catalog, hierarchy).execute(query)
        path = save_hierarchy(hierarchy, tmp_path / "snap.npz")

        # demote part of the base table to the cold tier (lossless)
        base = engine.catalog.table("PhotoObjAll")
        ra = base.column("ra")
        for block in range(max(0, ra.num_blocks - 1)):
            ra.demote(block, "cold")

        twin = build_hierarchy(
            "PhotoObjAll", UniformPolicy(layer_sizes=(5_000, 500)), rng=999
        )
        load_hierarchy(twin, path)
        after = BoundedQueryProcessor(engine.catalog, twin).execute(query)
        est_before = before.result.estimates["count(*)"]
        est_after = after.result.estimates["count(*)"]
        assert est_after.value == est_before.value
        assert est_after.se == est_before.se
        assert est_after.value_error == est_before.value_error == 0.0
