"""Tests for tiered block storage and the memory governor.

The contract under test (ROADMAP "Error-bounded compressed column
blocks"): a column's blocks may live hot (raw ndarray), warm
(error-bounded int8/int16 quantisation), or cold (mmap-backed raw
spill) — and the engine stays *honest* about it.  All-hot answers are
byte-identical to the pre-tiering engine; answers touching warm blocks
carry the recorded pointwise bound in ``Estimate.value_error``; exact
contracts force-promote so their answers are byte-identical again; and
zone-map pruning (zones fold from raw values before any demotion)
makes identical decisions at every tier without decompressing pruned
blocks.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.columnstore import AggregateSpec, Catalog, Query, Table
from repro.columnstore import operators
from repro.columnstore.column import Column
from repro.columnstore.expressions import Between
from repro.core.contracts import Contract
from repro.core.engine import SciBorq
from repro.core.governor import (
    PROMOTE_HEADROOM,
    MemoryGovernor,
    governor_from_env,
)
from repro.core.persistence import ColumnBlockStore
from repro.core.server import SciBorqServer
from repro.core.shards import TableExport
from repro.errors import SchemaError

BS = 64  # block size used throughout: small enough for many blocks


def float_column(n: int = 4 * BS + 10, seed: int = 11) -> Column:
    rng = np.random.default_rng(seed)
    return Column("x", "float64", rng.uniform(-50.0, 150.0, n), block_size=BS)


def tiered_table(n: int = 6 * BS, seed: int = 3) -> Table:
    """A table whose x is sorted, so zones are tight and prunable."""
    rng = np.random.default_rng(seed)
    x = np.sort(rng.uniform(0.0, 600.0, n))
    y = rng.normal(10.0, 2.0, n)
    return Table(
        "fact",
        [
            Column("id", "int64", np.arange(n), block_size=BS),
            Column("x", "float64", x, block_size=BS),
            Column("y", "float64", y, block_size=BS),
        ],
    )


def tiered_engine(n: int = 6 * BS, seed: int = 3) -> SciBorq:
    catalog = Catalog()
    catalog.add_table(
        Table(
            "fact",
            [
                Column("id", "int64", block_size=BS),
                Column("x", "float64", block_size=BS),
                Column("y", "float64", block_size=BS),
            ],
        )
    )
    engine = SciBorq(
        catalog, interest_attributes={"x": (0.0, 600.0)}, rng=17
    )
    engine.create_hierarchy("fact", policy="uniform", layer_sizes=(64,))
    source = tiered_table(n, seed)
    engine.loader.load_batch(
        "fact",
        {name: source.column(name).values for name in ("id", "x", "y")},
    )
    return engine


# ----------------------------------------------------------------------
# Column: demote / promote mechanics
# ----------------------------------------------------------------------
class TestDemotePromote:
    def test_warm_block_dequantises_within_recorded_bound(self):
        col = float_column()
        original = col.values.copy()
        assert col.demote(0, "warm")
        assert col.tier_of(0) == "warm"
        bound = col.block_value_error(0)
        span = original[:BS].max() - original[:BS].min()
        assert 0.0 < bound <= span / 255 / 2 + 1e-9
        got = col.read_range(0, BS)
        assert np.abs(got - original[:BS]).max() <= bound

    def test_16_bit_warm_is_tighter_than_8_bit(self):
        a, b = float_column(seed=5), float_column(seed=5)
        a.demote(0, "warm", bits=8)
        b.demote(0, "warm", bits=16)
        assert 0.0 < b.block_value_error(0) < a.block_value_error(0)

    def test_cold_block_reads_byte_identical(self):
        col = float_column()
        original = col.values.copy()
        assert col.demote(1, "cold")
        assert col.tier_of(1) == "cold"
        assert col.block_value_error(1) == 0.0
        np.testing.assert_array_equal(col.read_range(BS, 2 * BS), original[BS : 2 * BS])

    def test_promotion_restores_exact_bytes_after_any_chain(self):
        col = float_column()
        original = col.values.copy()
        col.demote(0, "warm")
        col.demote(0, "cold")  # warm → cold uses the spilled raw bytes
        col.demote(1, "cold")
        col.demote(2, "warm")
        assert col.promote_all() == 3
        assert col.is_fully_hot
        np.testing.assert_array_equal(col.values, original)

    def test_partial_tail_block_never_demotes(self):
        col = float_column(n=2 * BS + 7)
        assert not col.demote(2, "warm")
        assert not col.demote(2, "cold")
        assert col.tier_of(2) == "hot"

    def test_demote_is_idempotent_and_promote_reports_change(self):
        col = float_column()
        assert col.demote(0, "warm")
        assert not col.demote(0, "warm")  # already there
        assert col.promote(0)
        assert not col.promote(0)  # already hot
        assert col.demote(0, "warm")  # demotable again after promotion

    def test_unquantisable_blocks_fall_through_to_cold(self):
        ints = Column("id", "int64", np.arange(3 * BS), block_size=BS)
        hidden = Column(
            "_pi", "float64", np.full(3 * BS, 0.25), block_size=BS
        )
        nans = Column("x", "float64", np.arange(3.0 * BS), block_size=BS)
        with_nan = nans.values.copy()
        # cannot mutate a sealed column's values in place; rebuild
        with_nan[5] = np.nan
        nans = Column("x", "float64", with_nan, block_size=BS)
        for col in (ints, hidden, nans):
            assert col.demote(0, "warm")
            assert col.tier_of(0) == "cold"  # lossless fallback
            assert col.block_value_error(0) == 0.0
        assert not ints.quantisable and not hidden.quantisable

    def test_constant_block_quantises_with_zero_error(self):
        col = Column("x", "float64", np.full(2 * BS, 7.5), block_size=BS)
        assert col.demote(0, "warm")
        assert col.tier_of(0) == "warm"
        assert col.block_value_error(0) == 0.0
        np.testing.assert_array_equal(col.read_range(0, BS), np.full(BS, 7.5))

    def test_appends_keep_working_after_demotion(self):
        col = float_column(n=2 * BS)
        original = col.values.copy()
        col.demote(0, "warm")
        col.extend(np.arange(float(BS + 3)))
        assert len(col) == 3 * BS + 3
        col.promote_all()
        np.testing.assert_array_equal(col.values[: 2 * BS], original)
        np.testing.assert_array_equal(
            col.values[2 * BS :], np.arange(float(BS + 3))
        )

    def test_gather_reports_touched_block_error_only(self):
        col = float_column()
        original = col.values.copy()
        col.demote(0, "warm")
        bound = col.block_value_error(0)
        # indices entirely inside hot blocks: exact, zero error
        hot_idx = np.arange(BS, 2 * BS)
        got, err = col.gather_with_error(hot_idx)
        assert err == 0.0
        np.testing.assert_array_equal(got, original[hot_idx])
        # indices touching the warm block: its bound is reported
        mixed_idx = np.array([0, 5, BS + 1])
        got, err = col.gather_with_error(mixed_idx)
        assert err == bound
        assert np.abs(got - original[mixed_idx]).max() <= bound

    def test_take_and_filter_carry_value_error_floor(self):
        col = float_column()
        col.demote(0, "warm")
        bound = col.block_value_error(0)
        taken = col.take(np.array([1, 2, 3]))
        assert taken.max_value_error() == bound
        kept = col.filter(np.arange(len(col)) < 10)
        assert kept.max_value_error() == bound

    def test_attach_spill_conflicts_are_rejected(self):
        col = float_column()
        store = ColumnBlockStore()
        col.attach_spill(store)
        col.attach_spill(store)  # same store: fine
        col.demote(0, "cold")
        with pytest.raises(SchemaError, match="another store"):
            col.attach_spill(ColumnBlockStore())


class TestFootprint:
    def test_warm_tier_shrinks_block_at_least_4x(self):
        col = float_column(n=4 * BS)
        hot = col.nbytes()
        for block in range(4):
            assert col.demote(block, "warm")
        assert col.nbytes() * 4 <= hot  # float64 → int8 is 8×
        tiers = col.nbytes_by_tier()
        assert tiers["hot"] == 0 and tiers["warm"] > 0
        assert tiers["cold"] == 0

    def test_cold_tier_frees_all_ram_and_reports_spill(self):
        col = float_column(n=2 * BS)
        for block in range(2):
            col.demote(block, "cold")
        assert col.nbytes() == 0
        assert col.nbytes_by_tier()["cold"] == 2 * BS * 8

    def test_table_aggregates_per_tier(self):
        table = tiered_table()
        assert table.is_fully_hot
        table.column("x").demote(0, "warm")
        table.column("y").demote(0, "cold")
        assert not table.is_fully_hot
        tiers = table.nbytes_by_tier()
        assert tiers["warm"] > 0 and tiers["cold"] > 0
        assert table.max_value_error() == table.column("x").block_value_error(0)
        table.promote_all()
        assert table.is_fully_hot and table.max_value_error() == 0.0


# ----------------------------------------------------------------------
# Scans: pruning identical across tiers, decompressions charged honestly
# ----------------------------------------------------------------------
class TestTieredScans:
    def test_pruning_decisions_identical_across_tiers(self):
        hot = tiered_table()
        demoted = tiered_table()
        predicate = Between("x", 150.0, 250.0)
        plan_hot = operators.scan_plan(hot, predicate)
        for block in range(demoted.num_blocks - 1):
            demoted.column("x").demote(block, "warm")
            demoted.column("y").demote(block, "cold")
        assert operators.scan_plan(demoted, predicate) == plan_hot
        assert plan_hot[3] > 0  # the predicate actually prunes something

    def test_pruned_blocks_are_never_decompressed(self):
        table = tiered_table()
        x = table.column("x")
        for block in range(table.num_blocks - 1):
            x.demote(block, "warm")
        predicate = Between("x", 150.0, 250.0)
        runs, _, blocks_scanned, blocks_pruned = operators.scan_plan(
            table, predicate
        )
        assert blocks_pruned > 0
        before = x.decompressions
        indices, stats = operators.select(table, predicate)
        assert stats.blocks_pruned == blocks_pruned
        # only surviving blocks paid a decompression
        assert x.decompressions - before <= blocks_scanned

    def test_selection_indices_match_hot_within_bound(self):
        hot = tiered_table()
        warm = tiered_table()
        for block in range(warm.num_blocks - 1):
            warm.column("x").demote(block, "warm")
        bound = warm.column("x").max_value_error()
        # a predicate whose edges sit far from any quantisation cell
        predicate = Between("x", 150.0 - 2 * bound, 250.0 + 2 * bound)
        hot_idx, _ = operators.select(hot, predicate)
        inner = Between("x", 150.0 + 2 * bound, 250.0 - 2 * bound)
        inner_idx, _ = operators.select(warm, inner)
        assert set(inner_idx).issubset(set(hot_idx))

    def test_all_hot_scan_pays_zero_decompressions(self):
        table = tiered_table()
        indices, _ = operators.select(table, Between("x", 100.0, 300.0))
        assert table.column("x").decompressions == 0
        assert indices.size > 0


# ----------------------------------------------------------------------
# Contract-honest execution
# ----------------------------------------------------------------------
class TestContractHonesty:
    def cone(self) -> Query:
        return Query(
            table="fact",
            predicate=Between("x", 100.0, 420.0),
            aggregates=[AggregateSpec("sum", "y"), AggregateSpec("avg", "y")],
        )

    def test_all_hot_estimates_carry_zero_value_error(self):
        engine = tiered_engine()
        outcome = engine.execute(self.cone(), contract=Contract.unconstrained())
        for estimate in outcome.result.estimates.values():
            assert estimate.value_error == 0.0

    def test_exact_contract_force_promotes_and_matches_pre_demotion(self):
        engine = tiered_engine()
        exact_before = engine.execute(self.cone(), contract=Contract.exact())
        table = engine.catalog.table("fact")
        for name in ("x", "y"):
            for block in range(table.num_blocks - 1):
                table.column(name).demote(block, "warm")
        assert not table.is_fully_hot
        exact_after = engine.execute(self.cone(), contract=Contract.exact())
        for name, estimate in exact_before.result.estimates.items():
            after = exact_after.result.estimates[name]
            assert after.value == estimate.value  # byte-identical
            assert after.value_error == 0.0
            assert after.method == "exact"
        # the touched columns were promoted back to answer exactly
        assert table.column("x").is_fully_hot
        assert table.column("y").is_fully_hot

    def test_execute_exact_matches_too(self):
        engine = tiered_engine()
        before = engine.execute_exact(self.cone())
        table = engine.catalog.table("fact")
        for block in range(table.num_blocks - 1):
            table.column("y").demote(block, "warm")
        after = engine.execute_exact(self.cone())
        assert after.scalars == before.scalars

    def test_warm_blocks_widen_estimates_honestly(self):
        engine = tiered_engine()
        exact = engine.execute_exact(self.cone()).scalars
        table = engine.catalog.table("fact")
        for block in range(table.num_blocks - 1):
            table.column("y").demote(block, "warm")
        delta = table.column("y").max_value_error()
        assert delta > 0.0
        outcome = engine.execute(self.cone(), contract=Contract.unconstrained())
        estimates = outcome.result.estimates
        for name in ("sum(y)", "avg(y)"):
            estimate = estimates[name]
            assert estimate.value_error > 0.0
            # the declared bound rides the CI: achieved error within
            # half-width at the contract's confidence, deterministically
            # for the bias component
            assert estimate.half_width >= estimate.value_error
        assert abs(estimates["avg(y)"].value - exact["avg(y)"]) <= (
            estimates["avg(y)"].half_width
        )


# ----------------------------------------------------------------------
# MemoryGovernor
# ----------------------------------------------------------------------
class TestGovernor:
    def test_enforce_demotes_until_under_budget(self):
        engine = tiered_engine()
        report = engine.memory_report()
        budget = int(report["ram_total"] * 0.4)
        governor = MemoryGovernor(budget)
        engine.set_memory_governor(governor)
        stats = governor.stats
        assert stats.enforcements >= 1
        assert stats.demotions_warm + stats.demotions_cold > 0
        assert stats.last_footprint <= budget
        after = engine.memory_report()
        assert after["ram_total"] < report["ram_total"]

    def test_least_recently_scanned_blocks_demote_first(self):
        engine = tiered_engine()
        table = engine.catalog.table("fact")
        # touch the last full block so it is the most recent
        hot_block = table.num_blocks - 2
        table.column("x").read_range(hot_block * BS, (hot_block + 1) * BS)
        budget = int(engine.memory_report()["ram_total"] * 0.7)
        engine.set_memory_governor(MemoryGovernor(budget))
        # something demoted, but the recently-scanned block stayed hot
        assert not table.is_fully_hot
        assert table.column("x").tier_of(hot_block) == "hot"

    def test_scanned_blocks_promote_back_when_headroom_allows(self):
        engine = tiered_engine()
        table = engine.catalog.table("fact")
        governor = MemoryGovernor(1)  # demote everything demotable
        engine.set_memory_governor(governor)
        assert not table.column("y").is_fully_hot
        assert not table.column("x").is_fully_hot
        # scan through y's demoted blocks (records the access tick)...
        table.column("y").read_range(0, table.num_rows)
        # ...then relax the budget: enforce promotes the scanned
        # working set, and only it — x was never touched
        governor.budget_bytes = 64 << 20
        engine.enforce_memory()
        assert governor.stats.promotions > 0
        assert table.column("y").is_fully_hot
        assert not table.column("x").is_fully_hot
        assert governor.stats.last_footprint <= (
            PROMOTE_HEADROOM * governor.budget_bytes
        )

    def test_hidden_pi_columns_only_ever_go_cold(self):
        col = Column("_pi", "float64", np.full(2 * BS, 0.5), block_size=BS)
        table = Table("w", [col])
        catalog = Catalog()
        catalog.add_table(table)
        engine = SciBorq(catalog, interest_attributes={"_pi": (0, 1)}, rng=1)
        engine.set_memory_governor(MemoryGovernor(1))
        assert col.block_tiers()["warm"] == 0
        assert col.block_tiers()["cold"] > 0

    def test_shared_spill_store_is_attached(self, tmp_path):
        store = ColumnBlockStore(tmp_path / "blocks.bin")
        engine = tiered_engine()
        engine.set_memory_governor(MemoryGovernor(1, spill=store))
        assert store.size_bytes > 0  # raw blocks landed in the shared store

    def test_governor_from_env_parses_suffixes(self):
        assert governor_from_env(None) is None
        assert governor_from_env("") is None
        assert governor_from_env("not-a-size") is None
        assert governor_from_env("-5") is None
        assert governor_from_env("1024").budget_bytes == 1024
        assert governor_from_env("64k").budget_bytes == 64 << 10
        assert governor_from_env("2M").budget_bytes == 2 << 20
        assert governor_from_env("1g").budget_bytes == 1 << 30


# ----------------------------------------------------------------------
# Engine + server wiring
# ----------------------------------------------------------------------
class TestMemoryReport:
    def test_report_shape_and_totals(self):
        engine = tiered_engine()
        report = engine.memory_report()
        for key in (
            "tables",
            "tiers",
            "impressions",
            "impressions_bytes",
            "recycler_bytes",
            "ram_total",
            "cold_bytes",
        ):
            assert key in report
        assert "fact" in report["tables"]
        tiers = report["tiers"]
        assert report["ram_total"] == (
            tiers["hot"]
            + tiers["warm"]
            + report["impressions_bytes"]
            + report["recycler_bytes"]
        )
        assert "budget_bytes" not in report  # no governor installed

    def test_report_tracks_demotions_and_governor(self):
        engine = tiered_engine()
        hot_bytes = engine.memory_report()["tiers"]["hot"]
        engine.set_memory_governor(MemoryGovernor(max(1, hot_bytes // 3)))
        report = engine.memory_report()
        assert report["tiers"]["warm"] + report["cold_bytes"] > 0
        assert report["tiers"]["hot"] < hot_bytes
        assert report["budget_bytes"] == max(1, hot_bytes // 3)
        assert report["governor"]["enforcements"] >= 1

    def test_summary_mentions_memory(self):
        engine = tiered_engine()
        assert "memory:" in engine.summary()


class TestServerWiring:
    def test_budget_param_installs_and_shutdown_restores(self):
        engine = tiered_engine()
        ram = engine.memory_report()["ram_total"]
        with SciBorqServer(
            engine, max_workers=1, memory_budget=int(ram * 0.5)
        ) as server:
            assert engine.memory_governor is server.memory_governor
            session = server.open_session()
            server.execute(
                session,
                Query(
                    table="fact",
                    predicate=Between("x", 100.0, 420.0),
                    aggregates=[AggregateSpec("sum", "y")],
                ),
                contract=Contract.unconstrained(),
            )
            assert "governor" in server.summary()
        assert engine.memory_governor is None  # restored on shutdown
        assert not engine.catalog.table("fact").is_fully_hot  # governed

    def test_env_budget_is_consulted(self, monkeypatch):
        monkeypatch.setenv("SCIBORQ_MEMORY_BUDGET", "32m")
        engine = tiered_engine()
        with SciBorqServer(engine, max_workers=1) as server:
            assert server.memory_governor is not None
            assert server.memory_governor.budget_bytes == 32 << 20

    def test_no_budget_means_no_governor(self, monkeypatch):
        monkeypatch.delenv("SCIBORQ_MEMORY_BUDGET", raising=False)
        engine = tiered_engine()
        with SciBorqServer(engine, max_workers=1) as server:
            assert server.memory_governor is None


class TestShardInterop:
    def test_export_refuses_demoted_tables(self):
        table = tiered_table()
        table.column("x").demote(0, "warm")
        with pytest.raises(ValueError, match="demoted blocks"):
            TableExport(table)

    def test_export_works_after_promotion(self):
        table = tiered_table()
        table.column("x").demote(0, "warm")
        table.promote_all()
        export = TableExport(table)
        export.close()


class TestChunkedReadPaths:
    def test_getitem_and_to_numpy_on_chunked_columns(self):
        col = float_column(n=2 * BS + 5)
        original = col.values.copy()
        col.demote(0, "cold")
        assert col[3] == original[3]
        np.testing.assert_array_equal(col[5:70], original[5:70])
        np.testing.assert_array_equal(col.to_numpy(), original)
        mask = np.zeros(len(col), dtype=bool)
        mask[:4] = True
        np.testing.assert_array_equal(col[mask], original[:4])

    def test_zones_survive_demotion_exactly(self):
        col = float_column(n=3 * BS)
        zones_before = [col.zone(b) for b in range(col.num_blocks)]
        for block in range(col.num_blocks):
            col.demote(block, "warm")
        assert [col.zone(b) for b in range(col.num_blocks)] == zones_before

    def test_read_range_spanning_tiers_is_assembled(self):
        col = float_column(n=3 * BS + 9)
        original = col.values.copy()
        col.demote(0, "warm")
        col.demote(1, "cold")
        got = col.read_range(10, 3 * BS + 5)
        bound = col.block_value_error(0)
        assert np.abs(got - original[10 : 3 * BS + 5]).max() <= bound
        # hot blocks and the tail inside the range came back exact
        np.testing.assert_array_equal(
            got[2 * BS - 10 :], original[2 * BS : 3 * BS + 5]
        )

    def test_gather_rejects_boolean_masks(self):
        col = float_column()
        col.demote(0, "warm")
        with pytest.raises(SchemaError):
            col.gather(np.zeros(len(col), dtype=bool))

    def test_block_report_lists_full_blocks_only(self):
        col = float_column(n=2 * BS + 5)
        col.demote(1, "warm")
        report = col.block_report()
        assert [entry[0] for entry in report] == [0, 1]
        tiers = {block: tier for block, tier, _, _ in report}
        assert tiers == {0: "hot", 1: "warm"}
