"""Tests for ICICLES-style self-tuning samples (paper §5)."""

import numpy as np
import pytest

from repro.errors import SamplingError
from repro.sampling.icicles import SelfTuningReservoir


class TestBasics:
    def test_capacity_respected(self, rng):
        r = SelfTuningReservoir(100, rng=0)
        r.offer_batch(np.arange(10_000))
        assert r.size == len(r) == 100

    def test_counters(self):
        r = SelfTuningReservoir(10, rng=1)
        r.offer_batch(np.arange(50))
        r.offer_results(np.arange(5))
        assert r.seen == 50
        assert r.result_offers == 5

    def test_touch_weight_accumulates(self):
        r = SelfTuningReservoir(10, result_boost=2.0, rng=2)
        r.offer_batch(np.array([7]))
        r.offer_results(np.array([7, 7]))
        assert r.touch_weight(7) == pytest.approx(1.0 + 2.0 + 2.0)
        assert r.touch_weight(99) == 0.0

    def test_validation(self):
        with pytest.raises(SamplingError, match="capacity"):
            SelfTuningReservoir(0)
        with pytest.raises(SamplingError, match="result_boost"):
            SelfTuningReservoir(10, result_boost=0.0)


class TestSelfTuning:
    def test_result_tuples_become_overrepresented(self):
        """The ICICLES effect: repeatedly queried rows concentrate."""
        hot = np.arange(1_000)  # the workload's working set
        shares = []
        for seed in range(10):
            r = SelfTuningReservoir(500, rng=seed)
            r.offer_batch(np.arange(20_000))
            for _ in range(10):  # ten queries touching the hot rows
                r.offer_results(hot)
            shares.append(np.isin(r.row_ids, hot).mean())
        population_share = 1_000 / 20_000
        assert np.mean(shares) > 4 * population_share

    def test_without_results_behaves_like_plain_reservoir(self):
        r = SelfTuningReservoir(1_000, rng=3)
        n = 50_000
        r.offer_batch(np.arange(n))
        se = n / np.sqrt(12 * 1_000)
        assert abs(r.row_ids.mean() - n / 2) < 4 * se

    def test_result_boost_accelerates_tuning(self):
        hot = np.arange(500)
        slow_shares, fast_shares = [], []
        for seed in range(8):
            slow = SelfTuningReservoir(400, result_boost=1.0, rng=seed)
            fast = SelfTuningReservoir(400, result_boost=5.0, rng=seed + 50)
            for r in (slow, fast):
                r.offer_batch(np.arange(10_000))
                for _ in range(5):
                    r.offer_results(hot)
            slow_shares.append(np.isin(slow.row_ids, hot).mean())
            fast_shares.append(np.isin(fast.row_ids, hot).mean())
        assert np.mean(fast_shares) > np.mean(slow_shares)

    def test_inclusion_probabilities_scale_with_touches(self):
        r = SelfTuningReservoir(200, rng=4)
        r.offer_batch(np.arange(5_000))
        hot = np.arange(200)
        for _ in range(10):
            r.offer_results(hot)
        pis = r.inclusion_probabilities()
        ids = r.row_ids
        hot_in_sample = np.isin(ids, hot)
        if hot_in_sample.any() and (~hot_in_sample).any():
            assert pis[hot_in_sample].mean() > 3 * pis[~hot_in_sample].mean()
        assert (pis > 0).all() and (pis <= 1).all()


class TestEngineIntegration:
    def test_exact_queries_feed_the_self_tuning_sample(self, fresh_sky_engine):
        from repro.columnstore import AggregateSpec, Query
        from repro.columnstore.expressions import RadialPredicate

        engine = fresh_sky_engine
        reservoir = engine.enable_result_recycling("PhotoObjAll", capacity=2_000)
        # loads after enabling flow in through the builder
        from repro.skyserver.generator import SkyGenerator

        engine.ingest("PhotoObjAll", SkyGenerator(rng=90).photoobj_batch(10_000))
        assert reservoir.seen == 10_000

        q = Query(
            table="PhotoObjAll",
            predicate=RadialPredicate("ra", "dec", 150.0, 10.0, 5.0),
            aggregates=[AggregateSpec("count")],
        )
        before = reservoir.result_offers
        for _ in range(3):
            engine.execute_exact(q)
        assert reservoir.result_offers > before

    def test_lookup_requires_enabling(self, fresh_sky_engine):
        from repro.errors import ImpressionError

        with pytest.raises(ImpressionError, match="not enabled"):
            fresh_sky_engine.self_tuning_sample("PhotoObjAll")
