"""Tests for design-based estimators and their error bounds."""

import math

import numpy as np
import pytest

from repro.errors import EstimationError
from repro.stats.estimators import (
    Estimate,
    hajek_mean,
    ht_count,
    ht_sum,
    srs_count,
    srs_mean,
    srs_sum,
)


class TestEstimateRecord:
    def test_ci_is_symmetric(self):
        e = Estimate(100.0, 10.0, 0.95, "m", 50)
        low, high = e.ci
        assert high - e.value == pytest.approx(e.value - low)
        assert e.half_width == pytest.approx(19.59964, rel=1e-4)

    def test_relative_error(self):
        e = Estimate(200.0, 10.0, 0.95, "m", 50)
        assert e.relative_error == pytest.approx(e.half_width / 200.0)

    def test_zero_estimate_relative_error(self):
        assert Estimate(0.0, 1.0, 0.95, "m", 5).relative_error == math.inf
        assert Estimate(0.0, 0.0, 0.95, "m", 5).relative_error == 0.0

    def test_contains(self):
        e = Estimate(10.0, 1.0, 0.95, "m", 50)
        assert e.contains(10.5)
        assert not e.contains(20.0)

    def test_str_mentions_method(self):
        assert "srs" in str(Estimate(1.0, 0.1, 0.95, "srs-count", 10))


class TestSRSCount:
    def test_point_estimate_scales_proportion(self):
        e = srs_count(10, 100, 10_000)
        assert e.value == 1000.0

    def test_unbiased_over_replications(self, rng):
        population = np.zeros(5000)
        population[:500] = 1  # 10% match
        estimates = []
        for _ in range(300):
            sample = rng.choice(population, 200, replace=False)
            estimates.append(srs_count(int(sample.sum()), 200, 5000).value)
        assert np.mean(estimates) == pytest.approx(500, rel=0.05)

    def test_coverage_near_nominal(self, rng):
        population = np.zeros(5000)
        population[:1000] = 1
        covered = 0
        runs = 300
        for _ in range(runs):
            sample = rng.choice(population, 250, replace=False)
            e = srs_count(int(sample.sum()), 250, 5000, confidence=0.95)
            covered += e.contains(1000.0)
        assert covered / runs > 0.88  # 95% nominal, finite-sample slack

    def test_full_census_has_zero_error(self):
        e = srs_count(30, 100, 100)  # n = N: FPC kills the variance
        assert e.se == 0.0 and e.relative_error == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            srs_count(5, 0, 100)
        with pytest.raises(ValueError):
            srs_count(11, 10, 100)


class TestSRSSumMean:
    def test_sum_unbiased(self, rng):
        population = rng.normal(50, 10, 2000)
        estimates = []
        for _ in range(200):
            idx = rng.choice(2000, 100, replace=False)
            estimates.append(srs_sum(population[idx], 100, 2000).value)
        assert np.mean(estimates) == pytest.approx(population.sum(), rel=0.01)

    def test_sum_with_predicate_zeros(self, rng):
        """Matching values are zero-extended to the whole sample."""
        e = srs_sum(np.array([10.0, 20.0]), 100, 1000)
        assert e.value == pytest.approx(1000 * 30.0 / 100)

    def test_mean_matches_sample_mean_of_matches(self):
        e = srs_mean(np.array([2.0, 4.0, 6.0]), 100, 1000)
        assert e.value == 4.0

    def test_mean_requires_matches(self):
        with pytest.raises(EstimationError, match="zero matching"):
            srs_mean(np.array([]), 100, 1000)

    def test_se_shrinks_with_more_matches(self, rng):
        few = srs_mean(rng.normal(10, 2, 10), 1000, 10_000)
        many = srs_mean(rng.normal(10, 2, 500), 1000, 10_000)
        assert many.se < few.se

    def test_sum_more_matches_than_sample_rejected(self):
        with pytest.raises(ValueError, match="more matches"):
            srs_sum(np.ones(20), 10, 100)


class TestHorvitzThompson:
    def test_count_point_estimate(self):
        pis = np.full(50, 0.01)
        assert ht_count(pis).value == pytest.approx(5000.0)

    def test_sum_unbiased_under_unequal_probabilities(self, rng):
        values = rng.uniform(1, 10, 1000)
        pis = np.clip(values / values.sum() * 300, 0.01, 1.0)  # size-biased
        estimates = []
        for _ in range(300):
            included = rng.random(1000) < pis
            estimates.append(ht_sum(values[included], pis[included]).value)
        assert np.mean(estimates) == pytest.approx(values.sum(), rel=0.02)

    def test_certain_inclusion_contributes_no_variance(self):
        e = ht_sum(np.array([5.0]), np.array([1.0]))
        assert e.value == 5.0 and e.se == 0.0

    def test_rejects_bad_probabilities(self):
        with pytest.raises(EstimationError, match="inclusion"):
            ht_sum(np.array([1.0]), np.array([0.0]))
        with pytest.raises(EstimationError, match="inclusion"):
            ht_count(np.array([1.5]))

    def test_rejects_misaligned_inputs(self):
        with pytest.raises(EstimationError, match="align"):
            ht_sum(np.ones(3), np.full(2, 0.5))


class TestHajekMean:
    def test_equal_probabilities_reduce_to_plain_mean(self):
        values = np.array([1.0, 2.0, 3.0])
        e = hajek_mean(values, np.full(3, 0.1))
        assert e.value == pytest.approx(2.0)

    def test_unbiased_under_biased_design(self, rng):
        values = rng.normal(100, 15, 2000)
        # inclusion correlated with the value: the bias HT must undo
        pis = np.clip((values - values.min() + 1) / 500, 0.02, 0.9)
        estimates = []
        for _ in range(300):
            included = rng.random(2000) < pis
            estimates.append(hajek_mean(values[included], pis[included]).value)
        assert np.mean(estimates) == pytest.approx(values.mean(), rel=0.01)

    def test_requires_values(self):
        with pytest.raises(EstimationError, match="zero matching"):
            hajek_mean(np.array([]), np.array([]))

    def test_coverage_under_biased_design(self, rng):
        values = rng.normal(100, 15, 2000)
        pis = np.clip((values - values.min() + 1) / 500, 0.02, 0.9)
        truth = values.mean()
        covered = 0
        runs = 200
        for _ in range(runs):
            included = rng.random(2000) < pis
            covered += hajek_mean(values[included], pis[included]).contains(truth)
        assert covered / runs > 0.85
