"""Tests for argument-validation helpers."""

import pytest

from repro.util.validation import (
    require,
    require_fraction,
    require_in_range,
    require_positive,
    require_type,
)


class TestRequire:
    def test_passes_when_true(self):
        require(True, "never raised")

    def test_raises_with_message(self):
        with pytest.raises(ValueError, match="broken invariant"):
            require(False, "broken invariant")


class TestRequirePositive:
    def test_accepts_positive(self):
        require_positive(0.1, "x")

    @pytest.mark.parametrize("value", [0, -1, -0.5])
    def test_rejects_non_positive(self, value):
        with pytest.raises(ValueError, match="x must be positive"):
            require_positive(value, "x")


class TestRequireInRange:
    def test_accepts_bounds_inclusive(self):
        require_in_range(0, 0, 1, "x")
        require_in_range(1, 0, 1, "x")

    def test_rejects_outside(self):
        with pytest.raises(ValueError, match=r"x must be in \[0, 1\]"):
            require_in_range(1.5, 0, 1, "x")


class TestRequireFraction:
    def test_accepts_probability(self):
        require_fraction(0.5, "p")

    def test_rejects_above_one(self):
        with pytest.raises(ValueError):
            require_fraction(1.01, "p")


class TestRequireType:
    def test_accepts_match(self):
        require_type(3, int, "n")
        require_type(3.0, (int, float), "n")

    def test_rejects_mismatch_naming_parameter(self):
        with pytest.raises(TypeError, match="n must be int"):
            require_type("3", int, "n")
