"""Tests for streaming moment trackers (Welford/Chan)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats.streaming import MinMaxTracker, StreamingMoments

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


class TestStreamingMoments:
    def test_single_value(self):
        m = StreamingMoments()
        m.update(5.0)
        assert m.count == 1 and m.mean == 5.0 and m.variance == 0.0

    def test_matches_numpy(self, rng):
        values = rng.normal(3, 2, 500)
        m = StreamingMoments()
        for v in values:
            m.update(v)
        assert m.mean == pytest.approx(values.mean())
        assert m.variance == pytest.approx(values.var(ddof=1))

    def test_batch_equals_sequential(self, rng):
        values = rng.normal(0, 1, 300)
        seq = StreamingMoments()
        for v in values:
            seq.update(v)
        batch = StreamingMoments()
        batch.update_batch(values)
        assert batch.mean == pytest.approx(seq.mean)
        assert batch.variance == pytest.approx(seq.variance)

    def test_empty_batch_noop(self):
        m = StreamingMoments()
        m.update_batch(np.array([]))
        assert m.count == 0

    def test_merge_equals_concatenation(self, rng):
        a_vals = rng.normal(1, 1, 100)
        b_vals = rng.normal(5, 3, 200)
        a = StreamingMoments()
        a.update_batch(a_vals)
        b = StreamingMoments()
        b.update_batch(b_vals)
        a.merge(b)
        combined = np.concatenate([a_vals, b_vals])
        assert a.count == 300
        assert a.mean == pytest.approx(combined.mean())
        assert a.variance == pytest.approx(combined.var(ddof=1))

    @given(st.lists(finite_floats, min_size=2, max_size=60), st.integers(1, 59))
    @settings(max_examples=50, deadline=None)
    def test_split_merge_invariant(self, values, split):
        split = min(split, len(values) - 1)
        left = StreamingMoments()
        left.update_batch(np.array(values[:split]))
        right = StreamingMoments()
        right.update_batch(np.array(values[split:]))
        left.merge(right)
        whole = StreamingMoments()
        whole.update_batch(np.array(values))
        assert left.count == whole.count
        assert left.mean == pytest.approx(whole.mean, abs=1e-6)
        assert left.variance == pytest.approx(whole.variance, rel=1e-6, abs=1e-6)


class TestMinMaxTracker:
    def test_tracks_extremes(self):
        t = MinMaxTracker()
        t.update(3.0)
        t.update(-1.0)
        t.update(2.0)
        assert t.min == -1.0 and t.max == 3.0 and t.span == 4.0

    def test_batch(self, rng):
        values = rng.normal(0, 1, 100)
        t = MinMaxTracker()
        t.update_batch(values)
        assert t.min == values.min() and t.max == values.max()

    def test_merge(self):
        a, b = MinMaxTracker(), MinMaxTracker()
        a.update(1.0)
        b.update(10.0)
        a.merge(b)
        assert a.min == 1.0 and a.max == 10.0 and a.count == 2

    def test_span_before_updates(self):
        assert MinMaxTracker().span == 0.0
