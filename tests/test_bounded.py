"""Tests for the bounded query processor (paper §3.2)."""

import numpy as np
import pytest

from repro.columnstore import AggregateSpec, Query
from repro.columnstore.expressions import RadialPredicate
from repro.core.bounded import BoundedQueryProcessor, QualityContract
from repro.errors import BudgetExceededError, QualityBoundError, QueryError


@pytest.fixture
def processor(sky_engine) -> BoundedQueryProcessor:
    return sky_engine.processor("PhotoObjAll")


def cone_count(radius=5.0) -> Query:
    return Query(
        table="PhotoObjAll",
        predicate=RadialPredicate("ra", "dec", 150.0, 10.0, radius),
        aggregates=[AggregateSpec("count")],
    )


class TestContract:
    def test_validation(self):
        with pytest.raises(QueryError):
            QualityContract(max_relative_error=-0.1)
        with pytest.raises(QueryError):
            QualityContract(time_budget=-1)
        with pytest.raises(QueryError):
            QualityContract(confidence=1.0)

    def test_defaults_unconstrained(self):
        contract = QualityContract()
        assert contract.max_relative_error is None
        assert contract.time_budget is None


class TestUnconstrainedExecution:
    def test_answers_from_smallest_layer(self, processor):
        outcome = processor.execute(cone_count())
        assert len(outcome.attempts) == 1
        assert outcome.attempts[0].rows == 100  # smallest layer
        assert outcome.met_quality and outcome.met_budget

    def test_wrong_table_rejected(self, processor):
        with pytest.raises(QueryError, match="processor serves"):
            processor.execute(Query(table="Field"))


class TestErrorBoundEscalation:
    def test_escalates_until_bound_met(self, processor):
        outcome = processor.execute(
            cone_count(), QualityContract(max_relative_error=0.05)
        )
        assert outcome.met_quality
        assert outcome.achieved_error <= 0.05
        assert outcome.escalations >= 1
        # attempts are ordered small to large
        rows = [a.rows for a in outcome.attempts]
        assert rows == sorted(rows)

    def test_zero_error_bound_reaches_base_data(self, processor, sky_engine):
        outcome = processor.execute(
            cone_count(), QualityContract(max_relative_error=0.0)
        )
        assert outcome.result.exact
        assert outcome.achieved_error == 0.0
        assert outcome.attempts[-1].rows == sky_engine.catalog.table(
            "PhotoObjAll"
        ).num_rows

    def test_loose_bound_stops_early(self, processor):
        loose = processor.execute(
            cone_count(), QualityContract(max_relative_error=0.5)
        )
        tight = processor.execute(
            cone_count(), QualityContract(max_relative_error=0.02)
        )
        assert loose.total_cost < tight.total_cost

    def test_base_answer_matches_exact_executor(self, processor, sky_engine):
        outcome = processor.execute(
            cone_count(), QualityContract(max_relative_error=0.0)
        )
        exact = sky_engine.execute_exact(cone_count())
        assert outcome.result.estimates["count(*)"].value == exact.scalar(
            "count(*)"
        )


class TestTimeBounds:
    def test_budget_limits_escalation(self, processor):
        # enough for the two smaller layers only (100 + 1000 rows + agg)
        outcome = processor.execute(
            cone_count(),
            QualityContract(max_relative_error=0.0001, time_budget=5_000),
        )
        assert not outcome.met_quality  # bound unreachable in budget
        assert outcome.total_cost <= 5_000
        assert outcome.attempts[-1].rows < 10_000

    def test_generous_budget_allows_base(self, processor):
        outcome = processor.execute(
            cone_count(),
            QualityContract(max_relative_error=0.0, time_budget=10_000_000),
        )
        assert outcome.met_quality and outcome.met_budget

    def test_best_attempt_returned_when_budget_binds(self, processor):
        outcome = processor.execute(
            cone_count(),
            QualityContract(max_relative_error=0.001, time_budget=3_000),
        )
        # the best (largest affordable) answer is the one reported
        errors = [a.relative_error for a in outcome.attempts]
        assert outcome.achieved_error == min(errors)

    def test_tiny_budget_still_answers(self, processor):
        outcome = processor.execute(
            cone_count(), QualityContract(time_budget=10)
        )
        assert outcome.result is not None
        assert len(outcome.attempts) == 1
        assert not outcome.met_budget  # even the smallest layer overran


class TestUnanswerableRungs:
    def test_avg_over_unsampled_region_escalates(self, processor, sky_engine):
        """An AVG whose region the tiny layer missed must escalate,
        not crash: the layer records an infinite-error attempt."""
        from repro.columnstore.expressions import Between

        base = sky_engine.catalog.table("PhotoObjAll")
        # a sliver of ra that exists in the base but is very unlikely
        # to be in the 100-row smallest layer
        ra = np.sort(base["ra"])
        sliver = Query(
            table="PhotoObjAll",
            predicate=Between("ra", ra[10], ra[12]),
            aggregates=[AggregateSpec("avg", "r_mag")],
        )
        outcome = processor.execute(sliver)
        assert outcome.result is not None
        assert np.isfinite(
            outcome.result.estimates["avg(r_mag)"].value
        ) or outcome.result.exact
        # at least one rung was recorded as unanswerable or escalated
        assert len(outcome.attempts) >= 1


class TestStrictMode:
    def test_quality_violation_raises(self, processor):
        with pytest.raises(QualityBoundError, match="error bound"):
            processor.execute(
                cone_count(),
                QualityContract(
                    max_relative_error=0.0001, time_budget=2_000, strict=True
                ),
            )

    def test_budget_violation_raises(self, processor):
        with pytest.raises(BudgetExceededError, match="budget"):
            processor.execute(
                cone_count(), QualityContract(time_budget=10, strict=True)
            )


class TestGroupedQueries:
    def test_grouped_aggregate_with_loose_bound(self, processor):
        q = Query(
            table="PhotoObjAll",
            aggregates=[AggregateSpec("count")],
            group_by=("obj_type",),
        )
        outcome = processor.execute(q, QualityContract(max_relative_error=0.5))
        groups = outcome.result.groups
        assert groups is not None
        assert groups.num_rows == 2  # GALAXY and STAR

    def test_grouped_zero_bound_reaches_exact(self, processor, sky_engine):
        q = Query(
            table="PhotoObjAll",
            aggregates=[AggregateSpec("count")],
            group_by=("obj_type",),
        )
        outcome = processor.execute(q, QualityContract(max_relative_error=0.0))
        assert outcome.result.exact
        total = outcome.result.groups["count(*)"].sum()
        assert total == sky_engine.catalog.table("PhotoObjAll").num_rows

    def test_many_small_groups_force_escalation(self, processor):
        """Per-group error bounds: rare groups have huge relative
        errors on small layers, so a tight bound escalates."""
        q = Query(
            table="PhotoObjAll",
            aggregates=[AggregateSpec("count")],
            group_by=("fieldID",),
        )
        loose = processor.execute(q, QualityContract(max_relative_error=None))
        tight = processor.execute(q, QualityContract(max_relative_error=0.2))
        assert tight.total_cost > loose.total_cost


class TestRowQueriesBounded:
    def test_row_query_support_error_drives_escalation(self, processor):
        from repro.columnstore.expressions import Between

        q = Query(
            table="PhotoObjAll",
            predicate=Between("ra", 140, 160),
            select=("objID", "ra"),
            limit=25,
        )
        outcome = processor.execute(q, QualityContract(max_relative_error=0.05))
        assert outcome.met_quality
        rows = outcome.result.rows
        assert rows.num_rows <= 25
        assert (rows["ra"] >= 140).all()


class TestResultRecord:
    def test_describe_traces_the_ladder(self, processor):
        outcome = processor.execute(
            cone_count(), QualityContract(max_relative_error=0.05)
        )
        text = outcome.describe()
        assert "attempt" in text
        assert str(len(outcome.attempts)) in text

    def test_attempt_costs_sum_to_total(self, processor):
        outcome = processor.execute(
            cone_count(), QualityContract(max_relative_error=0.02)
        )
        assert sum(a.cost for a in outcome.attempts) == pytest.approx(
            outcome.total_cost
        )
