"""Cross-cutting property-based tests (hypothesis).

Each property here is an invariant that spans modules — the kind of
statement unit tests sample but cannot quantify over: estimator
identities, sampler conservation laws, histogram/KDE consistency,
bounded-execution contracts.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sampling.pps import pps_inclusion_probabilities, systematic_pps_sample
from repro.sampling.reservoir import ReservoirR
from repro.stats.estimators import hajek_mean, ht_count, ht_sum, srs_count
from repro.stats.fnchg import FisherNCHypergeometric
from repro.stats.histogram import EquiWidthHistogram, PredicateHistogram
from repro.stats.kde import BinnedKDE

positive_floats = st.floats(0.01, 1000.0, allow_nan=False)
unit_floats = st.floats(0.01, 1.0)


class TestEstimatorIdentities:
    @given(
        values=st.lists(st.floats(-100, 100), min_size=1, max_size=50),
        pi=unit_floats,
    )
    @settings(max_examples=60, deadline=None)
    def test_ht_sum_with_constant_pi_scales_the_sample_sum(self, values, pi):
        values = np.array(values)
        estimate = ht_sum(values, np.full(values.shape[0], pi))
        assert estimate.value == pytest.approx(values.sum() / pi, rel=1e-9)

    @given(
        values=st.lists(st.floats(-100, 100), min_size=1, max_size=50),
        pi=unit_floats,
    )
    @settings(max_examples=60, deadline=None)
    def test_hajek_mean_invariant_to_constant_pi(self, values, pi):
        values = np.array(values)
        estimate = hajek_mean(values, np.full(values.shape[0], pi))
        assert estimate.value == pytest.approx(values.mean(), rel=1e-9, abs=1e-9)

    @given(
        matches=st.integers(0, 100),
        extra=st.integers(0, 100),
        population=st.integers(200, 100_000),
    )
    @settings(max_examples=60, deadline=None)
    def test_srs_count_bounds_are_ordered_and_contain_estimate(
        self, matches, extra, population
    ):
        sample_size = matches + extra
        if sample_size == 0 or sample_size > population:
            return
        estimate = srs_count(matches, sample_size, population)
        low, high = estimate.ci
        assert low <= estimate.value <= high
        assert estimate.se >= 0

    @given(
        pis=st.lists(unit_floats, min_size=1, max_size=50),
    )
    @settings(max_examples=60, deadline=None)
    def test_ht_count_value_is_sum_of_inverse_pis(self, pis):
        pis = np.array(pis)
        estimate = ht_count(pis)
        assert estimate.value == pytest.approx((1.0 / pis).sum(), rel=1e-9)


class TestSamplerConservation:
    @given(
        capacity=st.integers(1, 100),
        stream=st.integers(0, 2000),
        seed=st.integers(0, 10_000),
    )
    @settings(max_examples=40, deadline=None)
    def test_reservoir_pis_sum_to_at_most_capacity(self, capacity, stream, seed):
        """Σπ over occupants never exceeds n (HT self-consistency)."""
        sampler = ReservoirR(capacity, rng=seed)
        sampler.offer_batch(np.arange(stream))
        pis = sampler.inclusion_probabilities()
        assert pis.sum() <= capacity + 1e-9

    @given(
        masses=st.lists(positive_floats, min_size=2, max_size=200),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=40, deadline=None)
    def test_pps_sample_size_is_exact(self, masses, seed):
        masses = np.array(masses)
        n = max(1, masses.shape[0] // 3)
        indices, pis = systematic_pps_sample(masses, n, rng=seed)
        assert indices.shape[0] == n
        assert (pis > 0).all()

    @given(
        masses=st.lists(positive_floats, min_size=2, max_size=200),
        scale=st.floats(0.1, 10.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_pps_pis_scale_invariant(self, masses, scale):
        """πps depends only on mass *ratios* — rescaling all masses
        changes nothing."""
        masses = np.array(masses)
        n = max(1, masses.shape[0] // 3)
        base = pps_inclusion_probabilities(masses, n)
        scaled = pps_inclusion_probabilities(masses * scale, n)
        np.testing.assert_allclose(base, scaled, rtol=1e-9)


class TestHistogramKdeConsistency:
    @given(
        values=st.lists(st.floats(0.0, 10.0, allow_nan=False), min_size=1, max_size=300),
        bins=st.integers(2, 40),
    )
    @settings(max_examples=40, deadline=None)
    def test_fbreve_integrates_to_one(self, values, bins):
        hist = PredicateHistogram(0.0, 10.0, bins)
        hist.observe_batch(np.array(values))
        kde = BinnedKDE(hist)
        # generous grid far beyond the domain to capture kernel tails
        grid = np.linspace(-40.0, 50.0, 1500)
        from scipy.integrate import trapezoid

        assert trapezoid(kde(grid), grid) == pytest.approx(1.0, abs=0.02)

    @given(
        values=st.lists(st.floats(0.0, 10.0, allow_nan=False), min_size=2, max_size=300),
        split=st.integers(1, 299),
    )
    @settings(max_examples=40, deadline=None)
    def test_histogram_merge_associative_with_stream(self, values, split):
        split = min(split, len(values) - 1)
        values = np.array(values)
        whole = PredicateHistogram(0.0, 10.0, 8)
        whole.observe_batch(values)
        left = PredicateHistogram(0.0, 10.0, 8)
        left.observe_batch(values[:split])
        right = PredicateHistogram(0.0, 10.0, 8)
        right.observe_batch(values[split:])
        left.merge(right)
        np.testing.assert_array_equal(left.counts, whole.counts)
        np.testing.assert_allclose(left.means, whole.means, atol=1e-9)

    @given(
        values=st.lists(st.floats(0.0, 100.0), min_size=1, max_size=200),
        bins=st.integers(1, 30),
    )
    @settings(max_examples=40, deadline=None)
    def test_tv_distance_is_a_metric_on_self(self, values, bins):
        values = np.array(values)
        a = EquiWidthHistogram(0.0, 100.0, bins)
        a.observe_batch(values)
        b = EquiWidthHistogram(0.0, 100.0, bins)
        b.observe_batch(values)
        assert a.total_variation_distance(b) == 0.0


class TestFisherNCHProperties:
    @given(
        m1=st.integers(1, 60),
        m2=st.integers(1, 60),
        odds=st.floats(0.1, 10.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_mean_within_support_and_monotone_in_odds(self, m1, m2, odds):
        n = (m1 + m2) // 2
        if n == 0:
            return
        d = FisherNCHypergeometric(m1, m2, n, odds)
        lo, hi = d.support
        assert lo <= d.mean <= hi
        d_higher = FisherNCHypergeometric(m1, m2, n, odds * 2.0)
        assert d_higher.mean >= d.mean - 1e-9

    @given(
        m1=st.integers(1, 60),
        m2=st.integers(1, 60),
        odds=st.floats(0.1, 10.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_complement_symmetry(self, m1, m2, odds):
        """Swapping the classes and inverting the odds mirrors X to
        n − X."""
        n = (m1 + m2) // 2
        if n == 0:
            return
        d = FisherNCHypergeometric(m1, m2, n, odds)
        mirrored = FisherNCHypergeometric(m2, m1, n, 1.0 / odds)
        assert d.mean + mirrored.mean == pytest.approx(n, rel=1e-6, abs=1e-6)
        assert d.variance == pytest.approx(
            mirrored.variance, rel=1e-6, abs=1e-6
        )


_shared_engine = None


def _bounded_engine():
    """Lazy shared engine (hypothesis does not manage pytest fixtures)."""
    global _shared_engine
    if _shared_engine is None:
        from repro.core.engine import SciBorq
        from repro.skyserver.generator import SkyGenerator, build_skyserver
        from repro.skyserver.schema import (
            DEC_RANGE,
            RA_RANGE,
            create_skyserver_catalog,
        )

        engine = SciBorq(
            create_skyserver_catalog(),
            interest_attributes={"ra": RA_RANGE, "dec": DEC_RANGE},
            rng=4242,
        )
        engine.create_hierarchy(
            "PhotoObjAll", policy="uniform", layer_sizes=(5_000, 500)
        )
        build_skyserver(
            30_000, generator=SkyGenerator(rng=4243), loader=engine.loader
        )
        _shared_engine = engine
    return _shared_engine


class TestBoundedExecutionContract:
    @given(target=st.floats(0.01, 0.9))
    @settings(max_examples=15, deadline=None)
    def test_met_quality_implies_achieved_below_target(self, target):
        from repro.columnstore import AggregateSpec, Query
        from repro.columnstore.expressions import RadialPredicate

        engine = _bounded_engine()
        query = Query(
            table="PhotoObjAll",
            predicate=RadialPredicate("ra", "dec", 150.0, 10.0, 5.0),
            aggregates=[AggregateSpec("count")],
        )
        outcome = engine.execute(query, max_relative_error=target)
        if outcome.met_quality:
            assert outcome.achieved_error <= target
        # attempts are always ordered cheap-to-expensive
        rows = [a.rows for a in outcome.attempts]
        assert rows == sorted(rows)
