"""Tests for block storage, zone maps, and pruned/parallel selection.

The contract under test: a zone-map pruned scan — serial or
morsel-parallel — returns *exactly* the indices of a full scan, while
charging only the rows of blocks the predicate could possibly match.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.columnstore import operators
from repro.columnstore.column import Column, Zone
from repro.columnstore.expressions import (
    And,
    Between,
    Comparison,
    InSet,
    Not,
    Or,
    RadialPredicate,
    TruePredicate,
)
from repro.columnstore.plan import estimate_cost
from repro.columnstore.table import Table
from repro.util.concurrency import MorselPool


def blocked_table(n: int = 96, block_size: int = 16, seed: int = 5) -> Table:
    """A small table with many blocks; x is sorted so zones are tight."""
    rng = np.random.default_rng(seed)
    x = np.sort(rng.uniform(0.0, 100.0, n))
    y = rng.uniform(-10.0, 10.0, n)
    return Table(
        "blocked",
        [
            Column("x", "float64", x, block_size=block_size),
            Column("y", "float64", y, block_size=block_size),
        ],
    )


class TestColumnZones:
    def test_zones_track_extend(self):
        col = Column("v", "float64", block_size=4)
        col.extend([1.0, 5.0, 3.0, 2.0, 10.0, 7.0])
        assert col.num_blocks == 2
        assert col.zone(0) == Zone(1.0, 5.0)
        assert col.zone(1) == Zone(7.0, 10.0)

    def test_zones_track_single_appends(self):
        col = Column("v", "int64", block_size=2)
        for v in (4, -1, 9):
            col.append(v)
        assert col.zone(0) == Zone(-1, 4)
        assert col.zone(1) == Zone(9, 9)

    def test_incremental_merge_within_partial_block(self):
        col = Column("v", "float64", block_size=8)
        col.extend([5.0, 6.0])
        col.extend([1.0, 9.0])
        assert col.zone(0) == Zone(1.0, 9.0)

    def test_nan_sets_flag_without_poisoning_bounds(self):
        col = Column("v", "float64", block_size=4)
        col.extend([1.0, np.nan, 3.0])
        zone = col.zone(0)
        assert zone.has_nan
        assert zone.lo == 1.0 and zone.hi == 3.0

    def test_all_nan_block_is_empty_zone(self):
        col = Column("v", "float64", block_size=2)
        col.extend([np.nan, np.nan])
        zone = col.zone(0)
        assert zone.empty and zone.has_nan

    def test_string_columns_keep_no_zones(self):
        col = Column("s", "U8", ["a", "b"], block_size=2)
        assert not col.tracks_zones
        assert col.zone(0) is None

    def test_block_index_out_of_range(self):
        col = Column("v", "float64", [1.0], block_size=4)
        with pytest.raises(IndexError):
            col.zone(1)

    def test_zone_fold_is_lazy_and_incremental(self):
        col = Column("v", "float64", block_size=4)
        col.extend([1.0, 5.0])
        assert col._zone_rows == 0  # nothing folded until asked
        assert col.zone(0) == Zone(1.0, 5.0)
        assert col._zone_rows == 2
        col.extend([0.5, 9.0, 2.0])  # crosses into a second block
        assert col._zone_rows == 2  # still lazy
        assert col.zone(0) == Zone(0.5, 9.0)
        assert col.zone(1) == Zone(2.0, 2.0)
        assert col._zone_rows == 5

    def test_take_and_filter_preserve_block_size(self):
        col = Column("v", "float64", np.arange(10.0), block_size=4)
        assert col.take(np.array([1, 2])).block_size == 4
        assert col.filter(np.arange(10) % 2 == 0).block_size == 4


class TestTableBlocks:
    def test_common_block_grid(self):
        table = blocked_table(n=40, block_size=8)
        assert table.block_size == 8
        assert table.num_blocks == 5

    def test_mismatched_block_sizes_disable_pruning(self):
        table = Table(
            "mixed",
            [
                Column("a", "float64", [1.0, 2.0], block_size=2),
                Column("b", "float64", [1.0, 2.0], block_size=4),
            ],
        )
        assert table.block_size is None
        runs, scanned, _, pruned = operators.scan_plan(
            table, Comparison("a", ">", 100.0)
        )
        assert runs == [(0, 2)] and scanned == 2 and pruned == 0

    def test_block_zones_skips_zoneless_columns(self):
        table = Table(
            "t",
            [
                Column("num", "float64", [1.0, 2.0], block_size=2),
                Column("txt", "U4", ["a", "b"], block_size=2),
            ],
        )
        zones = table.block_zones(0, ["num", "txt"])
        assert set(zones) == {"num"}


class TestPrune:
    def zone(self, lo, hi, has_nan=False):
        return {"x": Zone(lo, hi, has_nan)}

    def test_comparison_all_ops(self):
        zones = self.zone(10.0, 20.0)
        assert Comparison("x", "<", 10.0).prune(zones)
        assert not Comparison("x", "<", 10.5).prune(zones)
        assert Comparison("x", "<=", 9.9).prune(zones)
        assert Comparison("x", ">", 20.0).prune(zones)
        assert Comparison("x", ">=", 20.5).prune(zones)
        assert Comparison("x", "==", 21.0).prune(zones)
        assert not Comparison("x", "==", 15.0).prune(zones)
        assert not Comparison("x", "!=", 15.0).prune(zones)

    def test_not_equal_prunes_only_constant_blocks(self):
        assert Comparison("x", "!=", 7.0).prune(self.zone(7.0, 7.0))
        assert not Comparison("x", "!=", 7.0).prune(
            self.zone(7.0, 7.0, has_nan=True)
        )

    def test_all_nan_block_prunes_comparisons_but_not_ne(self):
        empty = self.zone(np.inf, -np.inf, has_nan=True)
        assert Comparison("x", "<", 5.0).prune(empty)
        assert Comparison("x", "==", 5.0).prune(empty)
        assert not Comparison("x", "!=", 5.0).prune(empty)

    def test_between_and_inset(self):
        zones = self.zone(10.0, 20.0)
        assert Between("x", 21.0, 30.0).prune(zones)
        assert Between("x", 0.0, 9.0).prune(zones)
        assert not Between("x", 15.0, 30.0).prune(zones)
        assert InSet("x", [1.0, 30.0]).prune(zones)
        assert not InSet("x", [1.0, 12.0]).prune(zones)
        assert not InSet("x", ["label"]).prune(zones)

    def test_radial_uses_bounding_box(self):
        zones = {"x": Zone(0.0, 1.0), "y": Zone(0.0, 1.0)}
        assert RadialPredicate("x", "y", 5.0, 0.5, 1.0).prune(zones)
        assert RadialPredicate("x", "y", 0.5, 5.0, 1.0).prune(zones)
        assert not RadialPredicate("x", "y", 1.5, 0.5, 1.0).prune(zones)

    def test_boolean_composition(self):
        zones = self.zone(10.0, 20.0)
        hit = Between("x", 15.0, 16.0)
        miss = Between("x", 30.0, 40.0)
        assert And([hit, miss]).prune(zones)
        assert not And([hit, hit]).prune(zones)
        assert Or([miss, miss]).prune(zones)
        assert not Or([hit, miss]).prune(zones)
        assert not Not(miss).prune(zones)  # conservative
        assert not TruePredicate().prune(zones)

    def test_missing_zone_never_prunes(self):
        assert not Comparison("other", ">", 1.0).prune(self.zone(0.0, 1.0))
        assert not Between("other", 5.0, 6.0).prune(self.zone(0.0, 1.0))


class TestPrunedSelect:
    def test_selective_scan_charges_fewer_tuples(self):
        table = blocked_table(n=96, block_size=16)
        lo, hi = 20.0, 25.0
        indices, stats = operators.select(table, Between("x", lo, hi))
        full = np.flatnonzero((table["x"] >= lo) & (table["x"] <= hi))
        np.testing.assert_array_equal(indices, full)
        assert stats.tuples_in < table.num_rows
        assert stats.blocks_pruned > 0
        assert stats.blocks_scanned + stats.blocks_pruned == table.num_blocks

    def test_impossible_predicate_scans_nothing(self):
        table = blocked_table()
        indices, stats = operators.select(table, Between("x", 500.0, 600.0))
        assert indices.shape[0] == 0
        assert stats.tuples_in == 0
        assert stats.blocks_pruned == table.num_blocks

    def test_true_predicate_scans_everything(self):
        table = blocked_table()
        indices, stats = operators.select(table, TruePredicate())
        assert indices.shape[0] == table.num_rows
        assert stats.tuples_in == table.num_rows

    def test_parallel_path_identical_to_serial(self):
        table = blocked_table(n=256, block_size=16)
        predicate = Or(
            [Between("x", 10.0, 30.0), Between("x", 70.0, 80.0)]
        )
        serial, serial_stats = operators.select(table, predicate)
        pool = MorselPool(max_workers=4)
        try:
            parallel, parallel_stats = operators.select(
                table, predicate, pool=pool, parallel_min_rows=0
            )
        finally:
            pool.shutdown()
        np.testing.assert_array_equal(serial, parallel)
        assert serial.tobytes() == parallel.tobytes()
        assert serial_stats.tuples_in == parallel_stats.tuples_in

    def test_pruning_equivalence_random_predicates(self):
        """Property: pruned and unpruned selection agree exactly."""
        rng = np.random.default_rng(314)
        n = 400
        x = np.sort(rng.uniform(0.0, 100.0, n))
        y = rng.uniform(-50.0, 50.0, n)
        pruned_table = Table(
            "p",
            [
                Column("x", "float64", x, block_size=32),
                Column("y", "float64", y, block_size=32),
            ],
        )
        flat_table = Table(
            "f",
            [
                Column("x", "float64", x, block_size=n),
                Column("y", "float64", y, block_size=n),
            ],
        )

        def random_predicate():
            kind = rng.integers(0, 5)
            column = "x" if rng.integers(0, 2) else "y"
            a, b = sorted(rng.uniform(-120.0, 220.0, 2))
            if kind == 0:
                return Between(column, a, b)
            if kind == 1:
                op = ["<", "<=", ">", ">=", "==", "!="][rng.integers(0, 6)]
                return Comparison(column, op, float(a))
            if kind == 2:
                return RadialPredicate(
                    "x", "y", float(a), float(b), float(rng.uniform(0, 30))
                )
            if kind == 3:
                return And([random_predicate(), random_predicate()])
            return Or([random_predicate(), random_predicate()])

        for _ in range(200):
            predicate = random_predicate()
            pruned, pruned_stats = operators.select(pruned_table, predicate)
            flat, _ = operators.select(flat_table, predicate)
            np.testing.assert_array_equal(pruned, flat)
            assert pruned_stats.tuples_in <= n

    def test_estimate_matches_pruned_scan_cost(self):
        from repro.columnstore.catalog import Catalog
        from repro.columnstore.query import Query

        table = blocked_table(n=96, block_size=16)
        catalog = Catalog()
        catalog.add_table(table)
        predicate = Between("x", 20.0, 25.0)
        estimate = estimate_cost(
            Query(table="blocked", predicate=predicate), catalog
        )
        _, stats = operators.select(table, predicate)
        assert estimate.steps[0].estimated_cost == stats.tuples_in
        assert "pruned" in estimate.steps[0].detail
