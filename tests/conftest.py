"""Shared fixtures: small, seeded SkyServer instances and engines.

Sizes are kept small (tens of thousands of rows) so the whole suite
runs in seconds; statistical assertions use tolerances appropriate to
those sizes and fixed seeds so they are deterministic.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.columnstore import Catalog, Loader, Table
from repro.core.engine import SciBorq
from repro.skyserver.generator import SkyGenerator, build_skyserver
from repro.skyserver.schema import DEC_RANGE, RA_RANGE, create_skyserver_catalog
from repro.skyserver.workload_gen import WorkloadGenerator


@pytest.fixture
def rng() -> np.random.Generator:
    """A fresh, fixed-seed generator per test."""
    return np.random.default_rng(987654321)


@pytest.fixture
def small_catalog() -> Catalog:
    """A two-table toy catalog: fact(id, x, grp) + dim(grp, label)."""
    catalog = Catalog()
    fact = Table("fact", {"id": "int64", "x": "float64", "grp": "int64"})
    dim = Table("dim", {"grp": "int64", "label_code": "int64"})
    catalog.add_table(fact)
    catalog.add_table(dim)
    loader = Loader(catalog)
    gen = np.random.default_rng(7)
    n = 1000
    loader.load_batch(
        "fact",
        {
            "id": np.arange(n),
            "x": gen.normal(10.0, 2.0, n),
            "grp": gen.integers(0, 8, n),
        },
    )
    loader.load_batch(
        "dim",
        {"grp": np.arange(8), "label_code": np.arange(8) * 100},
    )
    return catalog


@pytest.fixture(scope="session")
def sky_engine() -> SciBorq:
    """A populated SkyServer engine with a uniform hierarchy.

    Session-scoped: building 60k rows once keeps the suite fast.
    Tests must not mutate it (use ``fresh_sky_engine`` for that).
    """
    engine = SciBorq(
        create_skyserver_catalog(),
        interest_attributes={"ra": RA_RANGE, "dec": DEC_RANGE},
        rng=101,
    )
    engine.create_hierarchy(
        "PhotoObjAll", policy="uniform", layer_sizes=(10_000, 1_000, 100)
    )
    build_skyserver(
        60_000, generator=SkyGenerator(rng=102), loader=engine.loader
    )
    return engine


@pytest.fixture
def fresh_sky_engine() -> SciBorq:
    """A smaller, function-scoped engine safe to mutate."""
    engine = SciBorq(
        create_skyserver_catalog(),
        interest_attributes={"ra": RA_RANGE, "dec": DEC_RANGE},
        rng=201,
    )
    engine.create_hierarchy(
        "PhotoObjAll", policy="uniform", layer_sizes=(5_000, 500)
    )
    build_skyserver(
        30_000, generator=SkyGenerator(rng=202), loader=engine.loader
    )
    return engine


@pytest.fixture
def workload() -> WorkloadGenerator:
    """A seeded default workload generator."""
    return WorkloadGenerator(rng=303)
