"""Tests for the synthetic SkyServer schema."""

from repro.skyserver.schema import (
    DEC_RANGE,
    GALAXY,
    RA_RANGE,
    STAR,
    create_skyserver_catalog,
    field_schema,
    frame_schema,
    photoobj_schema,
    photoz_schema,
)


class TestSchemas:
    def test_photoobj_has_science_attributes(self):
        schema = photoobj_schema()
        for column in ("objID", "ra", "dec", "r_mag", "mjd", "obj_type"):
            assert column in schema

    def test_photoobj_has_fk_columns(self):
        schema = photoobj_schema()
        assert "fieldID" in schema and "frameID" in schema

    def test_dimension_schemas_have_keys(self):
        assert "fieldID" in field_schema()
        assert "frameID" in frame_schema()
        assert "pz_objID" in photoz_schema()

    def test_type_codes_follow_sdss(self):
        assert GALAXY == 3 and STAR == 6

    def test_survey_window_matches_paper_figures(self):
        assert RA_RANGE == (120.0, 240.0)
        assert DEC_RANGE == (0.0, 60.0)


class TestCatalogFactory:
    def test_tables_present(self):
        catalog = create_skyserver_catalog()
        assert set(catalog.table_names) == {
            "PhotoObjAll",
            "Field",
            "Frame",
            "Photoz",
        }

    def test_foreign_keys_declared(self):
        catalog = create_skyserver_catalog()
        fks = catalog.foreign_keys_of("PhotoObjAll")
        targets = {fk.dimension_table for fk in fks}
        assert targets == {"Field", "Frame", "Photoz"}

    def test_tables_start_empty(self):
        catalog = create_skyserver_catalog()
        assert catalog.table("PhotoObjAll").num_rows == 0
