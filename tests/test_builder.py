"""Tests for the impression builder riding the load pipeline."""

import numpy as np
import pytest

from repro.columnstore.catalog import Catalog
from repro.columnstore.loader import Loader
from repro.columnstore.table import Table
from repro.core.builder import ImpressionBuilder
from repro.core.impression import Impression
from repro.core.policy import UniformPolicy, build_hierarchy
from repro.sampling.biased import BiasedReservoir
from repro.sampling.extrema import ExtremaReservoir
from repro.sampling.reservoir import ReservoirR


@pytest.fixture
def setting():
    catalog = Catalog()
    catalog.add_table(Table("t", {"id": "int64", "x": "float64"}))
    loader = Loader(catalog)
    builder = ImpressionBuilder()
    loader.register("t", builder)
    return catalog, loader, builder


def load(loader, n, start=0):
    loader.load_batch(
        "t",
        {
            "id": np.arange(start, start + n),
            "x": np.linspace(0, 1, n),
        },
    )


class TestRouting:
    def test_impressions_fed_during_load(self, setting):
        catalog, loader, builder = setting
        imp = Impression("t/u/L0", "t", ReservoirR(50, rng=0))
        builder.attach(imp)
        load(loader, 500)
        assert imp.sampler.seen == 500
        assert imp.size == 50
        assert builder.tuples_processed == 500

    def test_hierarchy_attach_feeds_every_layer(self, setting):
        catalog, loader, builder = setting
        hierarchy = build_hierarchy("t", UniformPolicy(layer_sizes=(100, 10)), rng=1)
        builder.attach_hierarchy(hierarchy)
        load(loader, 1000)
        assert all(l.sampler.seen == 1000 for l in hierarchy.layers)

    def test_row_ids_match_base_positions(self, setting):
        catalog, loader, builder = setting
        imp = Impression("t/u/L0", "t", ReservoirR(20, rng=2))
        builder.attach(imp)
        load(loader, 100)
        load(loader, 100, start=100)
        base = catalog.table("t")
        ids = imp.row_ids
        np.testing.assert_array_equal(base["id"][ids], ids)

    def test_biased_sampler_receives_values(self, setting):
        catalog, loader, builder = setting
        seen_batches = []

        def mass(batch):
            seen_batches.append(sorted(batch))
            return np.ones(batch["x"].shape[0])

        imp = Impression("t/b/L0", "t", BiasedReservoir(10, mass, rng=3))
        builder.attach(imp)
        load(loader, 50)  # fills
        load(loader, 50, start=50)  # triggers mass computation
        assert seen_batches and seen_batches[0] == ["id", "x"]

    def test_extrema_reservoirs_fed(self, setting):
        catalog, loader, builder = setting
        extrema = ExtremaReservoir(4, "x")
        builder.attach_extrema("t", extrema)
        load(loader, 100)
        assert extrema.minimum == 0.0
        assert extrema.maximum == 1.0

    def test_detach_stops_feeding(self, setting):
        catalog, loader, builder = setting
        imp = Impression("t/u/L0", "t", ReservoirR(10, rng=4))
        builder.attach(imp)
        builder.detach(imp)
        load(loader, 100)
        assert imp.sampler.seen == 0

    def test_unrelated_tables_ignored(self, setting):
        catalog, loader, builder = setting
        catalog.add_table(Table("u", {"id": "int64"}))
        imp = Impression("t/u/L0", "t", ReservoirR(10, rng=5))
        builder.attach(imp)
        loader.load_batch("u", {"id": np.arange(10)})
        assert imp.sampler.seen == 0

    def test_impressions_of_lists_registrations(self, setting):
        catalog, loader, builder = setting
        imp = Impression("t/u/L0", "t", ReservoirR(10, rng=6))
        builder.attach(imp)
        assert builder.impressions_of("t") == [imp]
        assert builder.impressions_of("u") == []
