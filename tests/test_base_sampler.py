"""Tests for the reservoir base machinery: churn integral, load_state."""

import numpy as np
import pytest

from repro.errors import SamplingError
from repro.sampling.base import ReservoirBase
from repro.sampling.biased import BiasedReservoir
from repro.sampling.last_seen import LastSeenReservoir
from repro.sampling.reservoir import ReservoirR


class FixedProbReservoir(ReservoirBase):
    """Test double with a configurable constant acceptance probability."""

    def __init__(self, capacity, prob, rng=None):
        super().__init__(capacity, rng)
        self.prob = prob

    def acceptance_probabilities(self, row_ids, batch, counts_after):
        return np.full(row_ids.shape[0], self.prob)


class TestChurnIntegral:
    def test_uniform_schedule_reduces_to_n_over_N(self):
        """For acceptance n/cnt the churn-integral π must equal the
        classical Algorithm-R value for every occupant."""

        class PlainR(ReservoirBase):
            def acceptance_probabilities(self, row_ids, batch, counts_after):
                return self.capacity / counts_after.astype(float)

        sampler = PlainR(200, rng=0)
        for chunk in np.array_split(np.arange(20_000), 10):
            sampler.offer_batch(chunk)
        pis = sampler.inclusion_probabilities()
        np.testing.assert_allclose(pis, 200 / 20_000, rtol=0.02)

    def test_constant_schedule_decays_exponentially(self):
        sampler = FixedProbReservoir(100, prob=0.1, rng=1)
        sampler.offer_batch(np.arange(10_000))
        pis = sampler.inclusion_probabilities()
        ids = sampler.row_ids
        # π(c) = 0.1·exp(−0.1·(N−c)/n) for accepted tuples
        accepted = ids >= 100  # beyond the initial fill
        expected = 0.1 * np.exp(-0.1 * (10_000 - ids[accepted]) / 100)
        np.testing.assert_allclose(pis[accepted], expected, rtol=0.05)

    def test_churn_independent_of_batching(self):
        a = FixedProbReservoir(50, prob=0.2, rng=2)
        a.offer_batch(np.arange(5_000))
        b = FixedProbReservoir(50, prob=0.2, rng=2)
        for chunk in np.array_split(np.arange(5_000), 13):
            b.offer_batch(chunk)
        assert a._churn_total == pytest.approx(b._churn_total)

    def test_pis_bounded(self):
        sampler = FixedProbReservoir(10, prob=0.9, rng=3)
        sampler.offer_batch(np.arange(1_000))
        pis = sampler.inclusion_probabilities()
        assert (pis > 0).all() and (pis <= 1).all()


class TestLoadState:
    def test_roundtrip(self):
        sampler = ReservoirR(100, rng=0)
        ids = np.arange(100, 200)
        pis = np.linspace(0.1, 0.9, 100)
        sampler.load_state(ids, pis, seen=5_000)
        np.testing.assert_array_equal(sampler.row_ids, ids)
        assert sampler.seen == 5_000
        assert sampler.size == 100

    def test_loaded_pis_survive_on_non_uniform_samplers(self):
        sampler = LastSeenReservoir(100, daily_ingest=1000, rng=1)
        ids = np.arange(100)
        pis = np.full(100, 0.37)
        sampler.load_state(ids, pis, seen=1_000)
        np.testing.assert_allclose(sampler.inclusion_probabilities(), 0.37)

    def test_streaming_after_load_decays_loaded_pis(self):
        mass_fn = lambda batch: np.ones(batch["x"].shape[0])
        sampler = BiasedReservoir(100, mass_fn, rng=2)
        sampler.load_state(np.arange(100), np.full(100, 0.5), seen=1_000)
        sampler.offer_batch(
            np.arange(1_000, 3_000), {"x": np.arange(2_000).astype(float)}
        )
        pis = sampler.inclusion_probabilities()
        survivors = sampler.row_ids < 100
        if survivors.any():
            # loaded occupants decayed below their installed 0.5
            assert (pis[survivors] < 0.5).all()

    def test_partial_fill_allowed(self):
        sampler = ReservoirR(100, rng=3)
        sampler.load_state(np.arange(30), np.full(30, 1.0), seen=30)
        assert sampler.size == 30

    def test_validation(self):
        sampler = ReservoirR(10, rng=4)
        with pytest.raises(SamplingError, match="align"):
            sampler.load_state(np.arange(5), np.ones(4), seen=10)
        with pytest.raises(SamplingError, match="capacity"):
            sampler.load_state(np.arange(11), np.ones(11), seen=11)


class TestPPSRebuildIntegration:
    def test_biased_rebuild_uses_exact_pps_pis(self, rng):
        """After rebuild_from_base on a static table, a biased layer's
        πs equal the exact πps probabilities of its (floored) masses."""
        from repro.columnstore.table import Table
        from repro.core.hierarchy import ImpressionHierarchy
        from repro.core.impression import Impression
        from repro.core.maintenance import rebuild_from_base
        from repro.sampling.pps import pps_inclusion_probabilities

        base = Table.from_arrays(
            "base",
            {"id": np.arange(20_000), "x": rng.uniform(0, 100, 20_000)},
        )

        def mass_fn(batch):
            x = batch["x"]
            return np.where((x > 40) & (x < 60), 5.0, 0.2)

        sampler = BiasedReservoir(2_000, mass_fn, uniform_floor=0.1, rng=5)
        impression = Impression("base/b/L0", "base", sampler)
        hierarchy = ImpressionHierarchy("base/b", "base", [impression])
        rebuild_from_base(hierarchy, base)

        masses = np.maximum(mass_fn({"x": base["x"]}), 0.1)
        expected = pps_inclusion_probabilities(masses, 2_000)
        np.testing.assert_allclose(
            impression.inclusion_probabilities(),
            expected[impression.row_ids],
            rtol=1e-9,
        )
        # focal tuples dominate the sample
        focal = (base["x"][impression.row_ids] > 40) & (
            base["x"][impression.row_ids] < 60
        )
        assert focal.mean() > 0.5
