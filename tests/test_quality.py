"""Tests for quality assessment: estimates with error bounds."""

import math

import numpy as np
import pytest

from repro.columnstore import AggregateSpec, Between, JoinSpec, Query
from repro.columnstore.expressions import RadialPredicate
from repro.core.quality import ImpressionEstimator
from repro.errors import EstimationError


@pytest.fixture
def estimator(sky_engine) -> ImpressionEstimator:
    return ImpressionEstimator(sky_engine.catalog)


@pytest.fixture
def layer0(sky_engine):
    return sky_engine.hierarchy("PhotoObjAll").layer(0)


def cone_count(ra=150.0, dec=10.0, radius=5.0) -> Query:
    return Query(
        table="PhotoObjAll",
        predicate=RadialPredicate("ra", "dec", ra, dec, radius),
        aggregates=[AggregateSpec("count"), AggregateSpec("avg", "r_mag")],
    )


class TestScalarEstimates:
    def test_estimates_close_to_exact(self, sky_engine, estimator, layer0):
        result = estimator.estimate(cone_count(), layer0)
        exact = sky_engine.execute_exact(cone_count())
        count_est = result.estimates["count(*)"]
        avg_est = result.estimates["avg(r_mag)"]
        assert count_est.value == pytest.approx(
            exact.scalar("count(*)"), rel=0.15
        )
        assert avg_est.value == pytest.approx(exact.scalar("avg(r_mag)"), rel=0.02)

    def test_intervals_cover_truth_most_of_the_time(
        self, sky_engine, estimator, layer0
    ):
        covered = 0
        queries = [
            cone_count(150, 10, r) for r in (3.0, 4.0, 5.0, 6.0, 8.0)
        ] + [cone_count(205, 40, r) for r in (3.0, 4.0, 5.0, 6.0, 8.0)]
        for q in queries:
            result = estimator.estimate(q, layer0)
            exact = sky_engine.execute_exact(q)
            covered += result.estimates["count(*)"].contains(
                exact.scalar("count(*)")
            )
        assert covered >= 8  # 95% nominal over 10 queries

    def test_sum_estimate(self, sky_engine, estimator, layer0):
        q = Query(
            table="PhotoObjAll",
            predicate=Between("ra", 140, 160),
            aggregates=[AggregateSpec("sum", "r_mag")],
        )
        result = estimator.estimate(q, layer0)
        exact = sky_engine.execute_exact(q)
        assert result.estimates["sum(r_mag)"].value == pytest.approx(
            exact.scalar("sum(r_mag)"), rel=0.1
        )

    def test_min_max_have_unbounded_error(self, estimator, layer0):
        q = Query(
            table="PhotoObjAll",
            aggregates=[AggregateSpec("min", "r_mag"), AggregateSpec("max", "r_mag")],
        )
        result = estimator.estimate(q, layer0)
        assert result.estimates["min(r_mag)"].se == math.inf
        assert result.worst_relative_error == math.inf

    def test_var_std_plugin_estimates(self, sky_engine, estimator, layer0):
        q = Query(
            table="PhotoObjAll",
            aggregates=[AggregateSpec("var", "r_mag"), AggregateSpec("std", "r_mag")],
        )
        result = estimator.estimate(q, layer0)
        exact_var = sky_engine.catalog.table("PhotoObjAll")["r_mag"].var(ddof=1)
        assert result.estimates["var(r_mag)"].value == pytest.approx(
            exact_var, rel=0.1
        )
        assert result.estimates["std(r_mag)"].value == pytest.approx(
            math.sqrt(exact_var), rel=0.05
        )

    def test_avg_over_empty_region_raises(self, estimator, layer0):
        q = Query(
            table="PhotoObjAll",
            predicate=Between("ra", 120.0, 120.0001),  # almost surely unsampled
            aggregates=[AggregateSpec("avg", "r_mag")],
        )
        with pytest.raises(EstimationError, match="matching"):
            estimator.estimate(q, layer0)

    def test_smaller_layer_has_larger_error(self, sky_engine, estimator):
        hierarchy = sky_engine.hierarchy("PhotoObjAll")
        big = estimator.estimate(cone_count(), hierarchy.layer(0))
        small = estimator.estimate(cone_count(), hierarchy.layer(1))
        assert (
            small.estimates["count(*)"].relative_error
            > big.estimates["count(*)"].relative_error
        )


class TestJoins:
    def test_join_carries_dimension_values(self, sky_engine, estimator, layer0):
        q = Query(
            table="PhotoObjAll",
            predicate=Between("ra", 140, 160),
            joins=[JoinSpec("Field", "fieldID", "fieldID", ("sky_brightness",))],
            aggregates=[AggregateSpec("avg", "sky_brightness")],
        )
        result = estimator.estimate(q, layer0)
        exact = sky_engine.execute_exact(q)
        assert result.estimates["avg(sky_brightness)"].value == pytest.approx(
            exact.scalar("avg(sky_brightness)"), rel=0.02
        )


class TestGroupedEstimates:
    def test_group_counts_sum_to_total_estimate(self, sky_engine, estimator, layer0):
        q = Query(
            table="PhotoObjAll",
            aggregates=[AggregateSpec("count")],
            group_by=("obj_type",),
        )
        result = estimator.estimate(q, layer0)
        assert result.groups is not None
        total = result.groups["count(*)"].sum()
        assert total == pytest.approx(
            sky_engine.catalog.table("PhotoObjAll").num_rows, rel=0.05
        )
        assert "count(*)__se" in result.groups.column_names

    def test_group_estimates_close_to_exact(self, sky_engine, estimator, layer0):
        q = Query(
            table="PhotoObjAll",
            aggregates=[AggregateSpec("avg", "r_mag")],
            group_by=("obj_type",),
        )
        result = estimator.estimate(q, layer0)
        exact = sky_engine.execute_exact(q)
        est_by_type = dict(
            zip(result.groups["obj_type"], result.groups["avg(r_mag)"])
        )
        for row in exact.rows.iter_rows():
            assert est_by_type[row["obj_type"]] == pytest.approx(
                row["avg(r_mag)"], rel=0.03
            )

    def test_order_and_limit_applied_to_groups(self, estimator, layer0):
        q = Query(
            table="PhotoObjAll",
            aggregates=[AggregateSpec("count")],
            group_by=("fieldID",),
            order_by="count(*)",
            descending=True,
            limit=5,
        )
        result = estimator.estimate(q, layer0)
        counts = result.groups["count(*)"]
        assert counts.shape[0] == 5
        assert (np.diff(counts) <= 1e-9).all()


class TestRowQueries:
    def test_rows_come_from_sample_with_support_estimate(
        self, sky_engine, estimator, layer0
    ):
        q = Query(
            table="PhotoObjAll",
            predicate=Between("ra", 140, 160),
            select=("objID", "ra"),
            limit=20,
        )
        result = estimator.estimate(q, layer0)
        assert result.rows.num_rows <= 20
        assert (result.rows["ra"] >= 140).all()
        exact = sky_engine.execute_exact(
            Query(
                table="PhotoObjAll",
                predicate=Between("ra", 140, 160),
                aggregates=[AggregateSpec("count")],
            )
        )
        assert result.support.value == pytest.approx(
            exact.scalar("count(*)"), rel=0.15
        )

    def test_pi_column_hidden_from_output(self, estimator, layer0):
        q = Query(table="PhotoObjAll", predicate=Between("ra", 140, 160))
        result = estimator.estimate(q, layer0)
        assert "_pi" not in result.rows.column_names

    def test_limit_returns_representative_not_first(self, estimator, layer0):
        """The paper's LIMIT semantics: sampled rows, not a prefix of
        the base table."""
        q = Query(table="PhotoObjAll", select=("objID",), limit=50)
        result = estimator.estimate(q, layer0)
        # a base-table prefix would be objID 0..49; the sample spans
        # the whole table
        assert result.rows["objID"].max() > 10_000

    def test_describe_mentions_source(self, estimator, layer0):
        result = estimator.estimate(cone_count(), layer0)
        assert layer0.name in result.describe()
