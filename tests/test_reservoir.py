"""Tests for Algorithm R (paper Figure 2) and the reservoir base."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.stats import chisquare

from repro.errors import SamplingError
from repro.sampling.reservoir import ReservoirR


class TestBasics:
    def test_initial_fill_keeps_everything(self):
        r = ReservoirR(100, rng=0)
        r.offer_batch(np.arange(60))
        assert r.size == 60
        np.testing.assert_array_equal(np.sort(r.row_ids), np.arange(60))

    def test_capacity_never_exceeded(self, rng):
        r = ReservoirR(50, rng=1)
        for _ in range(20):
            r.offer_batch(rng.integers(0, 10_000, 100))
        assert r.size == 50 == len(r)

    def test_seen_counts_all_offers(self):
        r = ReservoirR(10, rng=2)
        r.offer_batch(np.arange(5))
        r.offer_batch(np.arange(5, 30))
        assert r.seen == 30

    def test_invalid_capacity(self):
        with pytest.raises(SamplingError, match="positive"):
            ReservoirR(0)

    def test_rejects_2d_row_ids(self):
        with pytest.raises(SamplingError, match="one-dimensional"):
            ReservoirR(5).offer_batch(np.zeros((2, 2), dtype=np.int64))

    def test_empty_offer_is_noop(self):
        r = ReservoirR(5, rng=3)
        assert r.offer_batch(np.array([], dtype=np.int64)) == 0

    def test_batching_invariance_of_fill(self):
        a = ReservoirR(100, rng=4)
        a.offer_batch(np.arange(100))
        b = ReservoirR(100, rng=4)
        for chunk in np.array_split(np.arange(100), 7):
            b.offer_batch(chunk)
        np.testing.assert_array_equal(np.sort(a.row_ids), np.sort(b.row_ids))


class TestUniformity:
    def test_mean_of_sampled_ids_is_central(self):
        r = ReservoirR(2000, rng=5)
        n_stream = 100_000
        for chunk in np.array_split(np.arange(n_stream), 20):
            r.offer_batch(chunk)
        # uniform sample of 0..N-1 has mean N/2 with se ≈ N/sqrt(12 n)
        se = n_stream / np.sqrt(12 * 2000)
        assert abs(r.row_ids.mean() - n_stream / 2) < 4 * se

    def test_decile_occupancy_chi_square(self):
        r = ReservoirR(5000, rng=6)
        n_stream = 200_000
        for chunk in np.array_split(np.arange(n_stream), 40):
            r.offer_batch(chunk)
        deciles = np.clip(r.row_ids * 10 // n_stream, 0, 9)
        counts = np.bincount(deciles, minlength=10)
        _, p_value = chisquare(counts)
        assert p_value > 0.001  # uniform occupancy not rejected

    def test_every_offered_tuple_can_survive(self):
        """The very last tuple must have probability n/N of inclusion —
        check by replication on a small configuration."""
        hits = 0
        runs = 2000
        for seed in range(runs):
            r = ReservoirR(5, rng=seed)
            r.offer_batch(np.arange(20))
            hits += 19 in r.row_ids
        expected = 5 / 20
        se = np.sqrt(expected * (1 - expected) / runs)
        assert abs(hits / runs - expected) < 4 * se


class TestInclusionProbabilities:
    def test_exact_closed_form(self):
        r = ReservoirR(100, rng=7)
        r.offer_batch(np.arange(10_000))
        pis = r.inclusion_probabilities()
        np.testing.assert_allclose(pis, 100 / 10_000)

    def test_before_overflow_probability_is_one(self):
        r = ReservoirR(100, rng=8)
        r.offer_batch(np.arange(40))
        np.testing.assert_allclose(r.inclusion_probabilities(), 1.0)

    def test_empty_reservoir(self):
        assert ReservoirR(5).inclusion_probabilities().shape == (0,)


class TestPropertyBased:
    @given(
        capacity=st.integers(1, 50),
        stream=st.integers(0, 500),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=60, deadline=None)
    def test_size_is_min_of_capacity_and_stream(self, capacity, stream, seed):
        r = ReservoirR(capacity, rng=seed)
        r.offer_batch(np.arange(stream))
        assert r.size == min(capacity, stream)
        assert r.seen == stream

    @given(
        capacity=st.integers(1, 30),
        stream=st.integers(1, 300),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=60, deadline=None)
    def test_contents_are_distinct_offered_ids(self, capacity, stream, seed):
        r = ReservoirR(capacity, rng=seed)
        r.offer_batch(np.arange(stream))
        ids = r.row_ids
        assert len(set(ids.tolist())) == len(ids)
        assert set(ids.tolist()) <= set(range(stream))
