"""Tests for the SciBorq engine facade."""

import pytest

from repro.columnstore import AggregateSpec, Query
from repro.columnstore.expressions import RadialPredicate, TruePredicate
from repro.core.engine import SciBorq
from repro.errors import ImpressionError, QueryError
from repro.skyserver.schema import create_skyserver_catalog
from repro.skyserver.views import register_skyserver_views


def cone_count(ra=150.0, dec=10.0, radius=5.0) -> Query:
    return Query(
        table="PhotoObjAll",
        predicate=RadialPredicate("ra", "dec", ra, dec, radius),
        aggregates=[AggregateSpec("count")],
    )


class TestConstruction:
    def test_requires_interest_attributes(self):
        with pytest.raises(ImpressionError, match="attribute of interest"):
            SciBorq(create_skyserver_catalog(), interest_attributes={})

    def test_hierarchy_lookup_before_creation(self, fresh_sky_engine):
        with pytest.raises(ImpressionError, match="no hierarchy"):
            fresh_sky_engine.hierarchy("Field")


class TestHierarchyManagement:
    def test_create_uniform_by_name(self, fresh_sky_engine):
        h = fresh_sky_engine.hierarchy("PhotoObjAll")
        assert h.depth == 2
        assert "uniform" in h.name

    def test_replacing_hierarchy_detaches_old_layers(self, fresh_sky_engine):
        old = fresh_sky_engine.hierarchy("PhotoObjAll")
        fresh_sky_engine.create_hierarchy(
            "PhotoObjAll", policy="uniform", layer_sizes=(2000, 200)
        )
        old_seen = old.layer(0).sampler.seen
        base = fresh_sky_engine.catalog.table("PhotoObjAll")
        batch = {name: base[name][:10].copy() for name in base.column_names}
        fresh_sky_engine.ingest("PhotoObjAll", batch)
        assert old.layer(0).sampler.seen == old_seen  # detached: unchanged
        new = fresh_sky_engine.hierarchy("PhotoObjAll")
        assert new.layer(0).sampler.seen == 10

    def test_unknown_policy_string(self, fresh_sky_engine):
        with pytest.raises(ImpressionError, match="unknown policy"):
            fresh_sky_engine.create_hierarchy("PhotoObjAll", policy="magic")

    def test_last_seen_requires_daily_ingest(self, fresh_sky_engine):
        with pytest.raises(ImpressionError, match="daily_ingest"):
            fresh_sky_engine.create_hierarchy("PhotoObjAll", policy="last-seen")

    def test_last_seen_with_daily_ingest(self, fresh_sky_engine):
        h = fresh_sky_engine.create_hierarchy(
            "PhotoObjAll",
            policy="last-seen",
            layer_sizes=(1000, 100),
            daily_ingest=10_000,
        )
        assert "last-seen" in h.name


class TestQueryPath:
    def test_execute_logs_and_feeds_interest(self, fresh_sky_engine):
        n_logged = len(fresh_sky_engine.query_log)
        n_interest = fresh_sky_engine.interest.total_observations()
        fresh_sky_engine.execute(cone_count())
        assert len(fresh_sky_engine.query_log) == n_logged + 1
        assert fresh_sky_engine.interest.total_observations() == n_interest + 2

    def test_execute_without_hierarchy_rejected(self, fresh_sky_engine):
        with pytest.raises(QueryError, match="no hierarchy"):
            fresh_sky_engine.execute(
                Query(table="Field", aggregates=[AggregateSpec("count")])
            )

    def test_error_bound_execution(self, fresh_sky_engine):
        outcome = fresh_sky_engine.execute(cone_count(), max_relative_error=0.1)
        assert outcome.met_quality
        assert outcome.achieved_error <= 0.1

    def test_execute_exact_bypasses_impressions(self, fresh_sky_engine):
        exact = fresh_sky_engine.execute_exact(cone_count())
        bounded = fresh_sky_engine.execute(cone_count(), max_relative_error=0.0)
        assert bounded.result.estimates["count(*)"].value == exact.scalar(
            "count(*)"
        )

    def test_view_queries_resolve_through_hierarchy(self, fresh_sky_engine):
        register_skyserver_views(fresh_sky_engine.catalog)
        outcome = fresh_sky_engine.execute(
            Query(table="Star", aggregates=[AggregateSpec("count")])
        )
        assert outcome.result.estimates["count(*)"].value > 0


class TestExtremaIntegration:
    def test_tracked_minmax_become_exact(self, fresh_sky_engine):
        fresh_sky_engine.track_extrema("PhotoObjAll", "r_mag", capacity=32)
        # extrema fill on *future* loads: ingest one more day
        from repro.skyserver.generator import SkyGenerator

        gen = SkyGenerator(rng=5)
        fresh_sky_engine.ingest("PhotoObjAll", gen.photoobj_batch(5000))
        q = Query(
            table="PhotoObjAll",
            predicate=TruePredicate(),
            aggregates=[AggregateSpec("min", "r_mag"), AggregateSpec("max", "r_mag")],
        )
        outcome = fresh_sky_engine.execute(q)
        min_est = outcome.result.estimates["min(r_mag)"]
        assert min_est.method == "extrema-min"
        assert min_est.se == 0.0

    def test_filtered_minmax_not_overridden(self, fresh_sky_engine):
        fresh_sky_engine.track_extrema("PhotoObjAll", "r_mag", capacity=32)
        from repro.skyserver.generator import SkyGenerator

        fresh_sky_engine.ingest(
            "PhotoObjAll", SkyGenerator(rng=6).photoobj_batch(5000)
        )
        q = Query(
            table="PhotoObjAll",
            predicate=RadialPredicate("ra", "dec", 150, 10, 5),
            aggregates=[AggregateSpec("min", "r_mag")],
        )
        outcome = fresh_sky_engine.execute(q)
        assert outcome.result.estimates["min(r_mag)"].method != "extrema-min"


class TestMaintenancePath:
    def test_refresh_uses_layer_below(self, fresh_sky_engine):
        reports = fresh_sky_engine.refresh("PhotoObjAll")
        assert len(reports) == 1  # two layers: one refresh edge
        assert reports[0].tuples_streamed == 5000

    def test_rebuild_touches_base_per_layer(self, fresh_sky_engine):
        reports = fresh_sky_engine.rebuild("PhotoObjAll")
        base_rows = fresh_sky_engine.catalog.table("PhotoObjAll").num_rows
        assert all(r.tuples_streamed == base_rows for r in reports)

    def test_maintain_quiet_without_drift(self, fresh_sky_engine):
        assert fresh_sky_engine.maintain() == {}

    def test_maintain_reacts_to_drift(self, fresh_sky_engine, rng):
        # establish a focus at ra=150, then shift hard to ra=230
        for _ in range(6):
            fresh_sky_engine.planner.observe("ra", rng.normal(150, 2, 100))
        for _ in range(3):
            fresh_sky_engine.planner.observe("ra", rng.normal(230, 2, 100))
        reports = fresh_sky_engine.maintain()
        assert "PhotoObjAll" in reports

    def test_summary_mentions_hierarchy_and_log(self, fresh_sky_engine):
        fresh_sky_engine.execute(cone_count())
        text = fresh_sky_engine.summary()
        assert "hierarchy" in text and "query log" in text
