"""Tests for column-subset impressions and widening (paper §3.1)."""

import numpy as np
import pytest

from repro.columnstore import AggregateSpec, Query
from repro.columnstore.expressions import Between
from repro.columnstore.table import Table
from repro.core.bounded import BoundedQueryProcessor
from repro.core.hierarchy import ImpressionHierarchy
from repro.core.impression import PI_COLUMN, Impression
from repro.sampling.reservoir import ReservoirR


@pytest.fixture
def base() -> Table:
    rng = np.random.default_rng(44)
    return Table.from_arrays(
        "base",
        {
            "id": np.arange(20_000),
            "x": rng.uniform(0, 100, 20_000),
            "y": rng.normal(50, 5, 20_000),
        },
    )


def subset_impression(base, columns, capacity=2_000, seed=0) -> Impression:
    sampler = ReservoirR(capacity, rng=seed)
    sampler.offer_batch(np.arange(base.num_rows))
    return Impression("base/sub", "base", sampler, columns=columns)


class TestWidening:
    def test_add_columns_extends_materialisation(self, base):
        impression = subset_impression(base, ("x",))
        narrow = impression.materialise(base)
        assert narrow.column_names == ["x", PI_COLUMN]
        impression.add_columns(["y"])
        wide = impression.materialise(base)
        assert wide.column_names == ["x", "y", PI_COLUMN]
        # the sampled rows are unchanged — only the width grew
        np.testing.assert_array_equal(narrow["x"], wide["x"])

    def test_add_existing_column_is_noop(self, base):
        impression = subset_impression(base, ("x",))
        table = impression.materialise(base)
        impression.add_columns(["x"])
        assert impression.materialise(base) is table  # cache intact

    def test_add_columns_on_full_impression_is_noop(self, base):
        impression = subset_impression(base, None)
        impression.add_columns(["x"])
        assert impression.columns is None

    def test_coverage_grows_with_widening(self, base):
        impression = subset_impression(base, ("x",))
        query_y = Query(table="base", aggregates=[AggregateSpec("avg", "y")])
        assert not impression.covers(query_y, base)
        impression.add_columns(["y"])
        assert impression.covers(query_y, base)


class TestBoundedFallback:
    def test_uncovered_query_goes_straight_to_base(self, base):
        """A hierarchy whose layers lack the queried column must answer
        from the base table (the last rung), exactly."""
        from repro.columnstore.catalog import Catalog

        catalog = Catalog()
        catalog.add_table(base)
        hierarchy = ImpressionHierarchy(
            "base/h", "base", [subset_impression(base, ("x",))]
        )
        processor = BoundedQueryProcessor(catalog, hierarchy)
        outcome = processor.execute(
            Query(table="base", aggregates=[AggregateSpec("avg", "y")])
        )
        assert outcome.result.exact
        assert len(outcome.attempts) == 1
        assert outcome.attempts[0].rows == base.num_rows

    def test_covered_query_uses_the_subset_layer(self, base):
        from repro.columnstore.catalog import Catalog

        catalog = Catalog()
        catalog.add_table(base)
        hierarchy = ImpressionHierarchy(
            "base/h", "base", [subset_impression(base, ("x",))]
        )
        processor = BoundedQueryProcessor(catalog, hierarchy)
        outcome = processor.execute(
            Query(
                table="base",
                predicate=Between("x", 20, 40),
                aggregates=[AggregateSpec("count")],
            )
        )
        assert not outcome.result.exact
        assert outcome.attempts[0].rows == 2_000
