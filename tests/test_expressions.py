"""Tests for the predicate AST: evaluation, predicate-set extraction,
fingerprints."""

import numpy as np
import pytest

from repro.columnstore.expressions import (
    And,
    Between,
    Comparison,
    InSet,
    Not,
    Or,
    RadialPredicate,
    TruePredicate,
    col_between,
    col_eq,
)
from repro.columnstore.table import Table
from repro.errors import QueryError


@pytest.fixture
def table() -> Table:
    return Table.from_arrays(
        "t",
        {
            "x": np.array([0.0, 1.0, 2.0, 3.0, 4.0]),
            "y": np.array([0.0, 0.0, 2.0, 0.0, 4.0]),
            "tag": np.array([0, 1, 0, 1, 0]),
        },
    )


class TestEvaluation:
    def test_true_predicate_matches_all(self, table):
        assert TruePredicate().evaluate(table).all()

    @pytest.mark.parametrize(
        "op,expected",
        [
            ("<", [True, True, False, False, False]),
            ("<=", [True, True, True, False, False]),
            (">", [False, False, False, True, True]),
            (">=", [False, False, True, True, True]),
            ("==", [False, False, True, False, False]),
            ("!=", [True, True, False, True, True]),
        ],
    )
    def test_comparisons(self, table, op, expected):
        mask = Comparison("x", op, 2.0).evaluate(table)
        np.testing.assert_array_equal(mask, expected)

    def test_unknown_operator(self):
        with pytest.raises(QueryError, match="unknown comparison"):
            Comparison("x", "<>", 1)

    def test_between_inclusive(self, table):
        mask = Between("x", 1.0, 3.0).evaluate(table)
        np.testing.assert_array_equal(mask, [False, True, True, True, False])

    def test_between_inverted_bounds(self):
        with pytest.raises(QueryError, match="inverted"):
            Between("x", 3.0, 1.0)

    def test_in_set(self, table):
        mask = InSet("x", [0.0, 4.0]).evaluate(table)
        np.testing.assert_array_equal(mask, [True, False, False, False, True])

    def test_in_set_requires_values(self):
        with pytest.raises(QueryError, match="at least one"):
            InSet("x", [])

    def test_radial(self, table):
        mask = RadialPredicate("x", "y", 0.0, 0.0, 1.5).evaluate(table)
        np.testing.assert_array_equal(mask, [True, True, False, False, False])

    def test_radial_negative_radius(self):
        with pytest.raises(QueryError, match="non-negative"):
            RadialPredicate("x", "y", 0, 0, -1)

    def test_and_or_not(self, table):
        expr = (col_between("x", 1, 3) & col_eq("tag", 1)) | Not(
            Comparison("x", "<", 4)
        )
        mask = expr.evaluate(table)
        np.testing.assert_array_equal(mask, [False, True, False, True, True])

    def test_empty_conjunction_rejected(self):
        with pytest.raises(QueryError):
            And([])
        with pytest.raises(QueryError):
            Or([])


class TestRequestedValues:
    def test_equality_logs_point(self):
        assert col_eq("x", 5).requested_values() == {"x": [5.0]}

    def test_non_numeric_equality_logs_nothing(self):
        assert col_eq("name", "abc").requested_values() == {}

    def test_between_logs_midpoint(self):
        assert Between("x", 10, 20).requested_values() == {"x": [15.0]}

    def test_radial_logs_centre_per_axis(self):
        values = RadialPredicate("ra", "dec", 185, 0, 3).requested_values()
        assert values == {"ra": [185.0], "dec": [0.0]}

    def test_conjunction_merges_per_attribute(self):
        expr = And([col_eq("x", 1), col_eq("x", 2), col_eq("y", 3)])
        values = expr.requested_values()
        assert values["x"] == [1.0, 2.0] and values["y"] == [3.0]

    def test_negation_expresses_disinterest(self):
        assert Not(col_eq("x", 1)).requested_values() == {}

    def test_in_set_logs_numeric_members(self):
        assert InSet("x", [1, 2]).requested_values() == {"x": [1.0, 2.0]}


class TestFingerprints:
    def test_same_predicate_same_fingerprint(self):
        a = Between("x", 1, 2) & col_eq("y", 3)
        b = Between("x", 1, 2) & col_eq("y", 3)
        assert a.fingerprint() == b.fingerprint()

    def test_different_constants_differ(self):
        assert (
            Between("x", 1, 2).fingerprint() != Between("x", 1, 3).fingerprint()
        )

    def test_columns_collection(self):
        expr = RadialPredicate("ra", "dec", 0, 0, 1) & col_eq("t", 1)
        assert expr.columns() == {"ra", "dec", "t"}
