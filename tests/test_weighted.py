"""Tests for the Efraimidis–Spirakis weighted reservoir baseline."""

import numpy as np
import pytest

from repro.errors import SamplingError
from repro.sampling.weighted import WeightedReservoir


class TestBasics:
    def test_capacity_respected(self, rng):
        w = WeightedReservoir(50, rng=0)
        w.offer_batch(np.arange(1000), rng.uniform(0.1, 1, 1000))
        assert w.size == len(w) == 50

    def test_fewer_items_than_capacity(self):
        w = WeightedReservoir(50, rng=0)
        w.offer_batch(np.arange(10), np.ones(10))
        assert w.size == 10

    def test_zero_weight_items_never_kept(self):
        w = WeightedReservoir(100, rng=1)
        weights = np.zeros(1000)
        weights[500:] = 1.0
        w.offer_batch(np.arange(1000), weights)
        assert (w.row_ids >= 500).all()

    def test_invalid_capacity(self):
        with pytest.raises(SamplingError, match="positive"):
            WeightedReservoir(0)

    def test_misaligned_inputs(self):
        with pytest.raises(SamplingError, match="align"):
            WeightedReservoir(5).offer_batch(np.arange(3), np.ones(2))

    def test_negative_weights_rejected(self):
        with pytest.raises(SamplingError, match="non-negative"):
            WeightedReservoir(5).offer_batch(np.arange(2), np.array([1.0, -1.0]))


class TestWeighting:
    def test_heavy_items_overrepresented(self):
        w = WeightedReservoir(500, rng=2)
        ids = np.arange(10_000)
        weights = np.where(ids < 1000, 20.0, 1.0)
        for chunk in np.array_split(ids, 10):
            w.offer_batch(chunk, weights[chunk])
        heavy_fraction = (w.row_ids < 1000).mean()
        assert heavy_fraction > 0.4  # population share is 0.1

    def test_equal_weights_approach_uniform(self):
        w = WeightedReservoir(1000, rng=3)
        n = 50_000
        for chunk in np.array_split(np.arange(n), 10):
            w.offer_batch(chunk, np.ones(chunk.shape[0]))
        se = n / np.sqrt(12 * 1000)
        assert abs(w.row_ids.mean() - n / 2) < 4 * se

    def test_streaming_order_invariance_in_distribution(self):
        """Offering heavy items first or last should not change their
        expected share (A-Res is order-independent in distribution)."""
        shares = []
        for order in ("first", "last"):
            fractions = []
            for seed in range(15):
                w = WeightedReservoir(200, rng=seed)
                ids = np.arange(5000)
                weights = np.where(ids < 500, 10.0, 1.0)
                sequence = ids if order == "first" else ids[::-1]
                w.offer_batch(sequence, weights[sequence])
                fractions.append((w.row_ids < 500).mean())
            shares.append(np.mean(fractions))
        assert shares[0] == pytest.approx(shares[1], abs=0.05)


class TestInclusionApproximation:
    def test_pis_valid_probabilities(self, rng):
        w = WeightedReservoir(100, rng=4)
        w.offer_batch(np.arange(5000), rng.uniform(0.1, 5, 5000))
        pis = w.inclusion_probabilities()
        assert pis.shape[0] == 100
        assert (pis > 0).all() and (pis <= 1).all()

    def test_pi_scales_with_weight(self):
        w = WeightedReservoir(100, rng=5)
        ids = np.arange(10_000)
        weights = np.where(ids % 2 == 0, 4.0, 1.0)
        w.offer_batch(ids, weights)
        pis = w.inclusion_probabilities()
        kept_weights = w.weights
        heavy = pis[kept_weights == 4.0].mean()
        light = pis[kept_weights == 1.0].mean()
        assert heavy == pytest.approx(4 * light, rel=1e-6)

    def test_empty_reservoir(self):
        assert WeightedReservoir(5).inclusion_probabilities().shape == (0,)
