"""Tests for impression maintenance: refresh, rebuild, drift reaction."""

import numpy as np
import pytest

from repro.columnstore.table import Table
from repro.core.hierarchy import ImpressionHierarchy
from repro.core.maintenance import (
    MaintenancePlanner,
    rebuild_from_base,
    refresh_from_below,
    refresh_hierarchy,
)
from repro.core.policy import UniformPolicy, build_hierarchy
from repro.errors import ImpressionError
from repro.util.clock import CostClock
from repro.workload.drift import DriftDetector
from repro.workload.interest import InterestModel


@pytest.fixture
def base() -> Table:
    return Table.from_arrays(
        "base",
        {"id": np.arange(50_000), "x": np.linspace(0, 100, 50_000)},
    )


@pytest.fixture
def hierarchy(base) -> ImpressionHierarchy:
    h = build_hierarchy("base", UniformPolicy(layer_sizes=(5000, 500, 50)), rng=0)
    for layer in h.layers:
        layer.sampler.offer_batch(np.arange(base.num_rows))
    return h


class TestRefreshFromBelow:
    def test_upper_contents_subset_of_lower(self, base, hierarchy):
        lower, upper = hierarchy.layer(0), hierarchy.layer(1)
        report = refresh_from_below(upper, lower, base)
        assert report.tuples_streamed == lower.size
        assert set(upper.row_ids.tolist()) <= set(lower.row_ids.tolist())
        assert upper.size == upper.capacity

    def test_cost_is_lower_layer_size_not_base(self, base, hierarchy):
        clock = CostClock()
        refresh_from_below(hierarchy.layer(1), hierarchy.layer(0), base, clock)
        assert clock.now == hierarchy.layer(0).size  # 5000, not 50 000

    def test_composed_pis_installed(self, base, hierarchy):
        lower, upper = hierarchy.layer(0), hierarchy.layer(1)
        refresh_from_below(upper, lower, base)
        pis = upper.inclusion_probabilities()
        # two uniform stages: 5000/50000 * 500/5000 = 500/50000
        np.testing.assert_allclose(pis, 500 / 50_000, rtol=1e-6)

    def test_rejects_inverted_sizes(self, base, hierarchy):
        with pytest.raises(ImpressionError, match="smaller"):
            refresh_from_below(hierarchy.layer(0), hierarchy.layer(1), base)

    def test_refresh_hierarchy_runs_topdown(self, base, hierarchy):
        reports = refresh_hierarchy(hierarchy, base)
        assert [r.target for r in reports] == [
            hierarchy.layer(1).name,
            hierarchy.layer(2).name,
        ]
        # the smallest layer is now a subset of the middle one
        assert set(hierarchy.layer(2).row_ids.tolist()) <= set(
            hierarchy.layer(1).row_ids.tolist()
        )


class TestRebuildFromBase:
    def test_rebuild_replaces_contents(self, base, hierarchy):
        before = hierarchy.layer(2).row_ids.copy()
        rebuild_from_base(hierarchy, base, batch_size=10_000)
        after = hierarchy.layer(2).row_ids
        assert set(before.tolist()) != set(after.tolist())
        assert hierarchy.layer(2).size == 50

    def test_rebuild_cost_is_layers_times_base(self, base, hierarchy):
        clock = CostClock()
        rebuild_from_base(hierarchy, base, clock)
        assert clock.now == 3 * base.num_rows

    def test_rebuild_restores_exact_uniform_pis(self, base, hierarchy):
        rebuild_from_base(hierarchy, base)
        pis = hierarchy.layer(1).inclusion_probabilities()
        np.testing.assert_allclose(pis, 500 / 50_000)


class TestMaintenancePlanner:
    def make_planner(self) -> MaintenancePlanner:
        interest = InterestModel({"x": (0.0, 100.0)}, bins=20)
        interest.observe_values("x", np.random.default_rng(0).normal(20, 2, 300))
        return MaintenancePlanner(
            interest=interest,
            detectors={"x": DriftDetector((0, 100), bins=20, window=100, threshold=0.3)},
        )

    def test_no_drift_no_action(self, base, hierarchy, rng):
        planner = self.make_planner()
        planner.observe("x", rng.normal(20, 2, 200))
        assert planner.react(hierarchy, base) is None
        assert planner.drift_events == 0

    def test_drift_triggers_decay_and_refresh(self, base, hierarchy, rng):
        planner = self.make_planner()
        planner.observe("x", rng.normal(20, 2, 200))
        n_before = planner.interest.total_observations()
        planner.observe("x", rng.normal(80, 2, 200))  # focus moves
        reports = planner.react(hierarchy, base)
        assert reports is not None and len(reports) == 2
        assert planner.drift_events == 1
        assert planner.interest.total_observations() < n_before

    def test_reaction_resets_detector(self, base, hierarchy, rng):
        planner = self.make_planner()
        planner.observe("x", rng.normal(20, 2, 200))
        planner.observe("x", rng.normal(80, 2, 200))
        planner.react(hierarchy, base)
        # same (already handled) shift does not re-fire
        assert planner.react(hierarchy, base) is None

    def test_observe_unknown_attribute_ignored(self, rng):
        planner = self.make_planner()
        planner.observe("y", rng.normal(0, 1, 100))  # no detector: no-op
        assert planner.drifted_attributes() == []
