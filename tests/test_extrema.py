"""Tests for the extrema reservoir (the paper's outlier impressions)."""

import numpy as np
import pytest

from repro.errors import SamplingError
from repro.sampling.extrema import ExtremaReservoir


class TestTracking:
    def test_exact_min_and_max(self, rng):
        values = rng.normal(0, 10, 5000)
        reservoir = ExtremaReservoir(20, "v")
        for chunk_ids in np.array_split(np.arange(5000), 7):
            reservoir.offer_batch(chunk_ids, {"v": values[chunk_ids]})
        assert reservoir.minimum == values.min()
        assert reservoir.maximum == values.max()

    def test_keeps_k_smallest_and_largest(self, rng):
        values = rng.permutation(1000).astype(float)
        reservoir = ExtremaReservoir(10, "v")
        reservoir.offer_batch(np.arange(1000), {"v": values})
        kept_values = np.sort(values[reservoir.row_ids])
        np.testing.assert_array_equal(kept_values[:5], np.arange(5.0))
        np.testing.assert_array_equal(kept_values[-5:], np.arange(995.0, 1000.0))

    def test_capacity_respected(self, rng):
        reservoir = ExtremaReservoir(8, "v")
        reservoir.offer_batch(np.arange(100), {"v": rng.normal(0, 1, 100)})
        assert reservoir.size == 8 == len(reservoir)

    def test_streaming_matches_batch(self, rng):
        values = rng.normal(0, 5, 2000)
        streamed = ExtremaReservoir(16, "v")
        for ids in np.array_split(np.arange(2000), 13):
            streamed.offer_batch(ids, {"v": values[ids]})
        whole = ExtremaReservoir(16, "v")
        whole.offer_batch(np.arange(2000), {"v": values})
        assert set(streamed.row_ids.tolist()) == set(whole.row_ids.tolist())


class TestValidation:
    def test_capacity_minimum(self):
        with pytest.raises(SamplingError, match="at least 2"):
            ExtremaReservoir(1, "v")

    def test_missing_attribute(self):
        reservoir = ExtremaReservoir(4, "v")
        with pytest.raises(SamplingError, match="missing"):
            reservoir.offer_batch(np.arange(2), {"w": np.zeros(2)})

    def test_misaligned_inputs(self):
        reservoir = ExtremaReservoir(4, "v")
        with pytest.raises(SamplingError, match="align"):
            reservoir.offer_batch(np.arange(3), {"v": np.zeros(2)})

    def test_extremes_before_any_data(self):
        reservoir = ExtremaReservoir(4, "v")
        with pytest.raises(SamplingError, match="no values"):
            _ = reservoir.minimum
