"""Tests for the Figure-5 predicate histogram and the plain histogram."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats.histogram import EquiWidthHistogram, PredicateHistogram

domain_values = st.lists(
    st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
    min_size=1,
    max_size=200,
)


class TestPredicateHistogram:
    def test_figure5_semantics_counts_and_means(self):
        hist = PredicateHistogram(0.0, 10.0, 5)
        for v in [1.0, 1.5, 7.0]:
            hist.observe(v)
        assert hist.total == 3
        assert hist.counts[0] == 2 and hist.counts[3] == 1
        assert hist.means[0] == pytest.approx(1.25)
        assert hist.means[3] == pytest.approx(7.0)

    def test_batch_equals_sequential(self, rng):
        values = rng.uniform(0, 10, 500)
        seq = PredicateHistogram(0, 10, 16)
        for v in values:
            seq.observe(v)
        batch = PredicateHistogram(0, 10, 16)
        batch.observe_batch(values)
        np.testing.assert_array_equal(seq.counts, batch.counts)
        np.testing.assert_allclose(seq.means, batch.means, atol=1e-9)

    def test_out_of_domain_clamps_to_edge_bins(self):
        hist = PredicateHistogram(0, 10, 5)
        hist.observe(-5.0)
        hist.observe(15.0)
        assert hist.counts[0] == 1 and hist.counts[-1] == 1
        assert hist.total == 2

    def test_value_at_maximum_goes_to_last_bin(self):
        hist = PredicateHistogram(0, 10, 5)
        hist.observe(10.0)
        assert hist.counts[-1] == 1

    def test_merge_matches_combined_stream(self, rng):
        a_vals = rng.uniform(0, 10, 100)
        b_vals = rng.uniform(0, 10, 50)
        a = PredicateHistogram(0, 10, 8)
        a.observe_batch(a_vals)
        b = PredicateHistogram(0, 10, 8)
        b.observe_batch(b_vals)
        a.merge(b)
        combined = PredicateHistogram(0, 10, 8)
        combined.observe_batch(np.concatenate([a_vals, b_vals]))
        np.testing.assert_array_equal(a.counts, combined.counts)
        np.testing.assert_allclose(a.means, combined.means, atol=1e-9)

    def test_merge_rejects_different_domains(self):
        a = PredicateHistogram(0, 10, 8)
        b = PredicateHistogram(0, 20, 8)
        with pytest.raises(ValueError, match="different domains"):
            a.merge(b)

    def test_density_integrates_to_one(self, rng):
        hist = PredicateHistogram(0, 10, 16)
        hist.observe_batch(rng.uniform(0, 10, 400))
        assert (hist.density() * hist.width).sum() == pytest.approx(1.0)

    def test_effective_centers_prefer_means(self):
        hist = PredicateHistogram(0, 10, 2)
        hist.observe(1.0)  # bin 0 mean = 1.0 (midpoint would be 2.5)
        centers = hist.effective_centers()
        assert centers[0] == 1.0
        assert centers[1] == 7.5  # empty bin falls back to midpoint

    def test_decay_reduces_counts_keeps_means(self):
        hist = PredicateHistogram(0, 10, 2)
        hist.observe_batch(np.array([1.0, 2.0, 3.0, 4.0]))
        means_before = hist.means.copy()
        hist.decay(0.5)
        assert hist.total == hist.counts.sum() == 2
        np.testing.assert_array_equal(hist.means, means_before)

    def test_decay_factor_validation(self):
        hist = PredicateHistogram(0, 10, 2)
        with pytest.raises(ValueError, match="decay factor"):
            hist.decay(0.0)

    def test_empty_domain_rejected(self):
        with pytest.raises(ValueError, match="empty domain"):
            PredicateHistogram(5, 5, 4)

    @given(domain_values)
    @settings(max_examples=60, deadline=None)
    def test_invariant_sum_of_counts_is_N(self, values):
        hist = PredicateHistogram(0.0, 10.0, 7)
        hist.observe_batch(np.array(values))
        assert hist.counts.sum() == hist.total == len(values)

    @given(domain_values)
    @settings(max_examples=60, deadline=None)
    def test_invariant_weighted_means_reconstruct_total_sum(self, values):
        hist = PredicateHistogram(0.0, 10.0, 7)
        hist.observe_batch(np.array(values))
        reconstructed = float((hist.counts * hist.means).sum())
        assert reconstructed == pytest.approx(sum(values), rel=1e-9, abs=1e-6)

    @given(domain_values)
    @settings(max_examples=60, deadline=None)
    def test_invariant_means_lie_inside_their_bins(self, values):
        hist = PredicateHistogram(0.0, 10.0, 7)
        hist.observe_batch(np.array(values))
        edges = hist.edges
        for i in range(hist.bins):
            if hist.counts[i]:
                assert edges[i] - 1e-9 <= hist.means[i] <= edges[i + 1] + 1e-9


class TestEquiWidthHistogram:
    def test_from_values_infers_range(self, rng):
        values = rng.uniform(3, 7, 100)
        hist = EquiWidthHistogram.from_values(values, bins=10)
        assert hist.total == 100
        assert hist.minimum == pytest.approx(values.min())
        assert hist.maximum == pytest.approx(values.max())

    def test_from_constant_values(self):
        hist = EquiWidthHistogram.from_values(np.full(5, 2.0), bins=4)
        assert hist.total == 5  # degenerate range handled

    def test_proportions_sum_to_one(self, rng):
        hist = EquiWidthHistogram.from_values(rng.normal(0, 1, 200), bins=8)
        assert hist.proportions().sum() == pytest.approx(1.0)

    def test_tv_distance_identical_is_zero(self, rng):
        values = rng.normal(0, 1, 200)
        a = EquiWidthHistogram(-5, 5, 10)
        a.observe_batch(values)
        b = EquiWidthHistogram(-5, 5, 10)
        b.observe_batch(values)
        assert a.total_variation_distance(b) == 0.0

    def test_tv_distance_disjoint_is_one(self):
        a = EquiWidthHistogram(0, 10, 10)
        a.observe_batch(np.full(10, 1.0))
        b = EquiWidthHistogram(0, 10, 10)
        b.observe_batch(np.full(10, 9.0))
        assert a.total_variation_distance(b) == pytest.approx(1.0)

    def test_tv_distance_requires_same_bins(self):
        a = EquiWidthHistogram(0, 1, 4)
        b = EquiWidthHistogram(0, 1, 8)
        with pytest.raises(ValueError, match="same bin count"):
            a.total_variation_distance(b)

    def test_empty_histogram_density_is_zero(self):
        hist = EquiWidthHistogram(0, 1, 4)
        np.testing.assert_array_equal(hist.density(), np.zeros(4))
