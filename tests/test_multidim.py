"""Tests for the 2-D interest histogram (paper footnote 3 future work)."""

import numpy as np
import pytest
from scipy.integrate import trapezoid

from repro.stats.multidim import Grid2DHistogram


@pytest.fixture
def grid() -> Grid2DHistogram:
    return Grid2DHistogram((0.0, 100.0), (0.0, 50.0), bins=20)


class TestObservation:
    def test_counts_and_total(self, grid, rng):
        grid.observe_batch(rng.uniform(0, 100, 300), rng.uniform(0, 50, 300))
        assert grid.total == 300
        assert grid.counts.sum() == 300

    def test_cell_means_match_observations(self, grid):
        # y-cell width is 2.5: both points fall in cell (ix=2, iy=2)
        grid.observe_batch(np.array([12.0, 13.0]), np.array([6.0, 7.0]))
        cell = grid.counts > 0
        assert grid.counts[cell].sum() == 2
        assert grid.x_means[cell][0] == pytest.approx(12.5)
        assert grid.y_means[cell][0] == pytest.approx(6.5)

    def test_out_of_range_clamped(self, grid):
        grid.observe_batch(np.array([-10.0, 500.0]), np.array([60.0, -5.0]))
        assert grid.total == 2

    def test_mismatched_batches_rejected(self, grid):
        with pytest.raises(ValueError, match="same shape"):
            grid.observe_batch(np.zeros(3), np.zeros(2))

    def test_incremental_merge_of_means(self, grid):
        # both points fall in cell (ix=2, iy=4): y width is 2.5
        grid.observe_batch(np.array([10.0]), np.array([10.0]))
        grid.observe_batch(np.array([12.0]), np.array([11.0]))
        cell = grid.counts > 0
        assert grid.x_means[cell][0] == pytest.approx(11.0)
        assert grid.y_means[cell][0] == pytest.approx(10.5)


class TestDensity:
    def test_integrates_to_one(self, rng):
        grid = Grid2DHistogram((0, 10), (0, 10), bins=10)
        grid.observe_batch(rng.normal(5, 1, 500), rng.normal(5, 1, 500))
        xs = np.linspace(-5, 15, 80)
        ys = np.linspace(-5, 15, 80)
        gx, gy = np.meshgrid(xs, ys)
        density = grid.density(gx.ravel(), gy.ravel()).reshape(gx.shape)
        total = trapezoid(trapezoid(density, xs, axis=1), ys)
        assert total == pytest.approx(1.0, abs=0.05)

    def test_peaks_where_mass_is(self, grid, rng):
        grid.observe_batch(rng.normal(30, 2, 400), rng.normal(20, 2, 400))
        focal = grid.density([30.0], [20.0])[0]
        far = grid.density([90.0], [45.0])[0]
        assert focal > 100 * max(far, 1e-12)

    def test_couples_dimensions_unlike_marginals(self, rng):
        """A cross-shaped workload: 2-D density distinguishes the arms'
        intersection from the empty diagonal corners, marginals cannot."""
        grid = Grid2DHistogram((0, 10), (0, 10), bins=10)
        n = 300
        # arm 1: x ~ 5, y uniform; arm 2: y ~ 5, x uniform
        grid.observe_batch(
            np.concatenate([rng.normal(5, 0.3, n), rng.uniform(0, 10, n)]),
            np.concatenate([rng.uniform(0, 10, n), rng.normal(5, 0.3, n)]),
        )
        on_arm = grid.density([5.0], [9.0])[0]
        off_diag = grid.density([9.0], [9.0])[0]
        assert on_arm > 3 * off_diag

    def test_empty_grid_evaluates_to_zero(self, grid):
        np.testing.assert_array_equal(grid.density([1.0], [1.0]), [0.0])

    def test_mismatched_query_points_rejected(self, grid):
        with pytest.raises(ValueError, match="same shape"):
            grid.density(np.zeros(2), np.zeros(3))


class TestMaintenance:
    def test_live_cells_bounded_by_bins_squared(self, grid, rng):
        grid.observe_batch(rng.uniform(0, 100, 1000), rng.uniform(0, 50, 1000))
        assert grid.live_cells() <= 400

    def test_decay(self, grid, rng):
        grid.observe_batch(rng.uniform(0, 100, 100), rng.uniform(0, 50, 100))
        grid.decay(0.5)
        assert grid.total == grid.counts.sum() <= 50

    def test_decay_validation(self, grid):
        with pytest.raises(ValueError, match="decay"):
            grid.decay(1.5)
