"""Tests for fGetNearbyObjEq and the Galaxy/Star views."""


from repro.columnstore import AggregateSpec, Executor, Query
from repro.skyserver.functions import (
    f_get_nearby_obj_eq,
    nearby_count_query,
    nearby_query,
)
from repro.skyserver.schema import GALAXY
from repro.skyserver.views import register_skyserver_views


class TestNearbyQueries:
    def test_nearby_query_shape(self):
        q = nearby_query(185.0, 0.0, 3.0)
        assert q.table == "PhotoObjAll"
        assert q.requested_values() == {"ra": [185.0], "dec": [0.0]}
        assert not q.is_aggregate

    def test_nearby_count_query_is_aggregate(self):
        q = nearby_count_query(185.0, 0.0, 3.0)
        assert q.is_aggregate
        assert q.aggregates[0].output_name == "count(*)"

    def test_results_inside_cone(self, sky_engine):
        result = f_get_nearby_obj_eq(sky_engine.catalog, 150.0, 10.0, 3.0)
        dx = result.rows["ra"] - 150.0
        dy = result.rows["dec"] - 10.0
        assert ((dx * dx + dy * dy) <= 9.0 + 1e-9).all()
        assert result.rows.num_rows > 0  # cone centred on a sky patch

    def test_limit_passthrough(self, sky_engine):
        result = f_get_nearby_obj_eq(sky_engine.catalog, 150.0, 10.0, 5.0, limit=7)
        assert result.rows.num_rows == 7

    def test_count_matches_row_query(self, sky_engine):
        ex = Executor(sky_engine.catalog)
        rows = ex.execute(nearby_query(205.0, 40.0, 2.0, select=None))
        count = ex.execute(nearby_count_query(205.0, 40.0, 2.0))
        assert count.scalar("count(*)") == rows.rows.num_rows


class TestViews:
    def test_register_views_idempotent(self, sky_engine):
        register_skyserver_views(sky_engine.catalog)
        register_skyserver_views(sky_engine.catalog)  # second call: no error
        assert sky_engine.catalog.has_view("Galaxy")
        assert sky_engine.catalog.has_view("Star")

    def test_galaxy_view_filters_type(self, sky_engine):
        register_skyserver_views(sky_engine.catalog)
        ex = Executor(sky_engine.catalog)
        galaxies = ex.execute(
            Query(table="Galaxy", aggregates=[AggregateSpec("count")])
        ).scalar("count(*)")
        expected = (sky_engine.catalog.table("PhotoObjAll")["obj_type"] == GALAXY).sum()
        assert galaxies == expected

    def test_galaxy_view_joins_photoz(self, sky_engine):
        register_skyserver_views(sky_engine.catalog)
        ex = Executor(sky_engine.catalog)
        result = ex.execute(Query(table="Galaxy", limit=5))
        assert "z_est" in result.rows.column_names

    def test_star_view_complements_galaxy(self, sky_engine):
        register_skyserver_views(sky_engine.catalog)
        ex = Executor(sky_engine.catalog)
        stars = ex.execute(
            Query(table="Star", aggregates=[AggregateSpec("count")])
        ).scalar("count(*)")
        galaxies = ex.execute(
            Query(table="Galaxy", aggregates=[AggregateSpec("count")])
        ).scalar("count(*)")
        total = sky_engine.catalog.table("PhotoObjAll").num_rows
        assert stars + galaxies == total
