"""Tests for histogram-based selectivity estimation."""

import numpy as np
import pytest

from repro.columnstore import Query, TableStatistics, estimate_cost
from repro.columnstore.expressions import (
    And,
    Between,
    Comparison,
    InSet,
    Not,
    Or,
    RadialPredicate,
    TruePredicate,
    col_eq,
)
from repro.columnstore.table import Table


@pytest.fixture
def table(rng) -> Table:
    n = 50_000
    return Table.from_arrays(
        "t",
        {
            "x": rng.normal(50, 10, n),
            "y": rng.uniform(0, 100, n),
            "tag": rng.integers(0, 20, n),
        },
    )


@pytest.fixture
def stats(table) -> TableStatistics:
    return TableStatistics(table, bins=64)


def true_fraction(table, predicate) -> float:
    return float(predicate.evaluate(table).mean())


class TestRangePredicates:
    def test_between_accuracy(self, table, stats):
        predicate = Between("x", 40, 60)
        assert stats.selectivity(predicate) == pytest.approx(
            true_fraction(table, predicate), abs=0.03
        )

    @pytest.mark.parametrize("op", ["<", "<=", ">", ">="])
    def test_one_sided_comparisons(self, table, stats, op):
        predicate = Comparison("x", op, 55.0)
        assert stats.selectivity(predicate) == pytest.approx(
            true_fraction(table, predicate), abs=0.03
        )

    def test_true_predicate_is_one(self, stats):
        assert stats.selectivity(TruePredicate()) == 1.0

    def test_out_of_domain_range_is_zero(self, table, stats):
        assert stats.selectivity(Between("x", 500, 600)) == 0.0

    def test_equality_roughly_one_bin_slot(self, table, stats):
        predicate = col_eq("tag", 7)
        estimated = stats.selectivity(predicate)
        # equality estimates are order-of-magnitude: 1/depth
        assert 0.0 < estimated < 0.1


class TestCompositePredicates:
    def test_radial_accuracy(self, table, stats):
        predicate = RadialPredicate("x", "y", 50.0, 50.0, 10.0)
        assert stats.selectivity(predicate) == pytest.approx(
            true_fraction(table, predicate), abs=0.05
        )

    def test_conjunction_independence(self, table, stats):
        predicate = And([Between("x", 40, 60), Between("y", 0, 50)])
        assert stats.selectivity(predicate) == pytest.approx(
            true_fraction(table, predicate), abs=0.05
        )

    def test_disjunction(self, table, stats):
        predicate = Or([Between("x", 40, 60), Between("y", 0, 20)])
        assert stats.selectivity(predicate) == pytest.approx(
            true_fraction(table, predicate), abs=0.06
        )

    def test_negation(self, table, stats):
        predicate = Not(Between("x", 40, 60))
        assert stats.selectivity(predicate) == pytest.approx(
            true_fraction(table, predicate), abs=0.03
        )

    def test_in_set_sums_points(self, table, stats):
        predicate = InSet("tag", [1, 2, 3])
        estimated = stats.selectivity(predicate)
        assert 0.0 < estimated <= 1.0


class TestCaching:
    def test_histogram_cached_until_version_change(self, table, stats):
        first = stats.histogram("x")
        assert stats.histogram("x") is first
        table.append_batch({"x": [50.0], "y": [50.0], "tag": [1]})
        assert stats.histogram("x") is not first

    def test_non_numeric_column_returns_none(self):
        t = Table.from_arrays("t", {"s": np.array(["a", "b"])})
        assert TableStatistics(t).histogram("s") is None

    def test_clear_drops_cache(self, table, stats):
        first = stats.histogram("x")
        stats.clear()
        assert stats.histogram("x") is not first


class TestPlanIntegration:
    def test_statistics_tighten_cost_estimates(self, table):
        from repro.columnstore.catalog import Catalog

        catalog = Catalog()
        catalog.add_table(table)
        stats = TableStatistics(table)
        query = Query(
            table="t",
            predicate=Between("x", 45, 55),
            aggregates=[],
            order_by="x",
        )
        upper = estimate_cost(query, catalog)
        informed = estimate_cost(query, catalog, statistics=stats)
        # the scan step is identical; the sort step shrinks to the
        # predicted surviving rows
        assert informed.total_cost < upper.total_cost
        surviving = true_fraction(table, query.predicate) * table.num_rows
        assert informed.steps[-1].estimated_cost == pytest.approx(
            surviving, rel=0.15
        )


class TestConcurrentHistogramAccess:
    def test_threaded_selectivity_under_concurrent_ingest(self):
        """Regression: the histogram cache dict was read and rebuilt
        unlocked on the concurrent query path; hammer it from many
        threads while appends keep invalidating the cache."""
        from concurrent.futures import ThreadPoolExecutor

        rng = np.random.default_rng(77)
        table = Table.from_arrays(
            "hot", {"x": rng.normal(50, 10, 2_000), "y": rng.uniform(0, 100, 2_000)}
        )
        stats = TableStatistics(table, bins=16)
        predicates = [
            Between("x", 40, 60),
            Comparison("y", "<", 30.0),
            And([Between("x", 30, 70), Comparison("y", ">", 10.0)]),
        ]
        stop = False
        errors: list[Exception] = []

        def reader() -> None:
            while not stop:
                try:
                    for predicate in predicates:
                        value = stats.selectivity(predicate)
                        assert 0.0 <= value <= 1.0
                except Exception as exc:  # pragma: no cover - regression net
                    errors.append(exc)
                    return

        def writer() -> None:
            for _ in range(60):
                table.append_batch(
                    {
                        "x": rng.normal(50, 10, 50),
                        "y": rng.uniform(0, 100, 50),
                    }
                )

        with ThreadPoolExecutor(max_workers=6) as pool:
            futures = [pool.submit(reader) for _ in range(5)]
            pool.submit(writer).result()
            stop = True
            for future in futures:
                future.result()
        assert not errors
