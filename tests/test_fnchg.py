"""Tests for Fisher's noncentral hypergeometric distribution (ref [6])."""

import numpy as np
import pytest
from scipy.stats import hypergeom

from repro.stats.fnchg import FisherNCHypergeometric, MultivariateFisherNCH


class TestUnivariate:
    def test_pmf_sums_to_one(self):
        d = FisherNCHypergeometric(30, 70, 20, 2.5)
        lo, hi = d.support
        assert d.pmf(np.arange(lo, hi + 1)).sum() == pytest.approx(1.0)

    def test_odds_one_reduces_to_central_hypergeometric(self):
        d = FisherNCHypergeometric(30, 70, 20, 1.0)
        xs = np.arange(*[s + o for s, o in zip(d.support, (0, 1))])
        expected = hypergeom(100, 30, 20).pmf(xs)
        np.testing.assert_allclose(d.pmf(xs), expected, atol=1e-12)
        assert d.mean == pytest.approx(20 * 30 / 100)

    def test_higher_odds_shift_mass_up(self):
        low = FisherNCHypergeometric(30, 70, 20, 0.5)
        high = FisherNCHypergeometric(30, 70, 20, 4.0)
        assert high.mean > low.mean

    def test_support_bounds(self):
        d = FisherNCHypergeometric(5, 3, 6, 2.0)
        assert d.support == (3, 5)  # needs at least 3 reds: 6 - 3 whites
        assert d.pmf(np.array([2]))[0] == 0.0
        assert d.pmf(np.array([6]))[0] == 0.0

    def test_cdf_monotone_and_complete(self):
        d = FisherNCHypergeometric(30, 70, 20, 3.0)
        lo, hi = d.support
        cdf = d.cdf(np.arange(lo, hi + 1))
        assert (np.diff(cdf) >= -1e-12).all()
        assert cdf[-1] == pytest.approx(1.0)
        assert d.cdf(np.array([lo - 1]))[0] == 0.0

    def test_mean_variance_against_monte_carlo(self, rng):
        d = FisherNCHypergeometric(50, 950, 100, 5.0)
        samples = d.sample(rng, 40_000)
        assert d.mean == pytest.approx(samples.mean(), rel=0.02)
        assert d.variance == pytest.approx(samples.var(), rel=0.08)

    def test_mode_is_argmax_of_pmf(self):
        d = FisherNCHypergeometric(40, 60, 30, 2.0)
        lo, hi = d.support
        xs = np.arange(lo, hi + 1)
        assert d.mode == xs[np.argmax(d.pmf(xs))]

    @pytest.mark.parametrize(
        "m1,m2,n,odds",
        [(50, 950, 100, 5.0), (500, 500, 300, 0.3), (10, 10, 5, 1.0)],
    )
    def test_mean_approximation_close_to_exact(self, m1, m2, n, odds):
        d = FisherNCHypergeometric(m1, m2, n, odds)
        assert d.mean_approximation() == pytest.approx(d.mean, rel=0.02, abs=0.2)

    def test_samples_within_support(self, rng):
        d = FisherNCHypergeometric(10, 5, 12, 0.7)
        samples = d.sample(rng, 1000)
        lo, hi = d.support
        assert samples.min() >= lo and samples.max() <= hi

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            FisherNCHypergeometric(-1, 10, 5, 1.0)
        with pytest.raises(ValueError):
            FisherNCHypergeometric(5, 5, 11, 1.0)
        with pytest.raises(ValueError):
            FisherNCHypergeometric(5, 5, 5, 0.0)


class TestMultivariate:
    def test_two_class_case_matches_univariate(self):
        mv = MultivariateFisherNCH([30, 70], [2.5, 1.0], 20)
        uv = FisherNCHypergeometric(30, 70, 20, 2.5)
        means = mv.marginal_means()
        assert means[0] == pytest.approx(uv.mean, rel=1e-6)
        assert means.sum() == pytest.approx(20.0)

    def test_marginal_means_sum_to_n(self):
        mv = MultivariateFisherNCH([100, 300, 600], [4.0, 2.0, 1.0], 200)
        assert mv.marginal_means().sum() == pytest.approx(200.0)

    def test_means_against_monte_carlo(self, rng):
        mv = MultivariateFisherNCH([100, 300, 600], [4.0, 2.0, 1.0], 200)
        draws = np.array([mv.sample(rng) for _ in range(2000)])
        np.testing.assert_allclose(
            mv.marginal_means(), draws.mean(axis=0), rtol=0.08
        )

    def test_sample_sums_to_n_and_respects_sizes(self, rng):
        mv = MultivariateFisherNCH([10, 20, 5], [1.0, 3.0, 0.5], 15)
        for _ in range(200):
            counts = mv.sample(rng)
            assert counts.sum() == 15
            assert (counts >= 0).all()
            assert (counts <= np.array([10, 20, 5])).all()

    def test_higher_odds_class_gets_more(self):
        mv = MultivariateFisherNCH([100, 100], [5.0, 1.0], 50)
        means = mv.marginal_means()
        assert means[0] > means[1]

    def test_empty_class_contributes_nothing(self):
        mv = MultivariateFisherNCH([0, 100], [2.0, 1.0], 10)
        means = mv.marginal_means()
        assert means[0] == 0.0 and means[1] == pytest.approx(10.0)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            MultivariateFisherNCH([10, 10], [1.0], 5)
        with pytest.raises(ValueError):
            MultivariateFisherNCH([10, 10], [1.0, -1.0], 5)
        with pytest.raises(ValueError):
            MultivariateFisherNCH([10, 10], [1.0, 1.0], 21)
