"""Tests for cost clocks and budgets."""

import pytest

from repro.util.clock import Budget, CostClock, WallClock


class TestCostClock:
    def test_starts_at_zero(self):
        assert CostClock().now == 0.0

    def test_charge_accumulates(self):
        clock = CostClock()
        clock.charge(10)
        clock.charge(2.5)
        assert clock.now == 12.5

    def test_negative_charge_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            CostClock().charge(-1)

    def test_reset(self):
        clock = CostClock()
        clock.charge(5)
        clock.reset()
        assert clock.now == 0.0


class TestWallClock:
    def test_advances_on_its_own(self):
        clock = WallClock()
        before = clock.now
        for _ in range(1000):
            pass
        assert clock.now >= before

    def test_charge_is_noop(self):
        clock = WallClock()
        clock.charge(1e9)  # must not explode or jump the clock by 1e9
        assert clock.now < 1.0

    def test_reset_restarts(self):
        clock = WallClock()
        clock.reset()
        assert clock.now < 1.0


class TestBudget:
    def test_unlimited_budget(self):
        budget = Budget(CostClock(), None)
        assert budget.remaining == float("inf")
        assert not budget.exhausted
        assert budget.affords(1e18)

    def test_spending_tracks_clock(self):
        clock = CostClock()
        clock.charge(100)  # spent before the budget opens: not counted
        budget = Budget(clock, 50)
        clock.charge(30)
        assert budget.spent == 30
        assert budget.remaining == 20

    def test_exhaustion(self):
        clock = CostClock()
        budget = Budget(clock, 10)
        clock.charge(10)
        assert budget.exhausted
        assert budget.remaining == 0.0

    def test_affords(self):
        clock = CostClock()
        budget = Budget(clock, 10)
        assert budget.affords(10)
        assert not budget.affords(11)

    def test_negative_limit_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            Budget(CostClock(), -1)

    def test_zero_limit_is_immediately_exhausted(self):
        assert Budget(CostClock(), 0).exhausted
