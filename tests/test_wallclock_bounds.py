"""Wall-clock time bounds — the paper's literal "within 5 minutes".

The deterministic cost clock is the default (reproducible bounds);
these tests exercise the :class:`~repro.util.clock.WallClock` adapter
end to end, so "seconds" budgets work too.
"""

import pytest

from repro.columnstore import AggregateSpec, Query
from repro.columnstore.expressions import RadialPredicate
from repro.core.bounded import BoundedQueryProcessor, QualityContract
from repro.core.maintenance import rebuild_from_base
from repro.core.policy import UniformPolicy, build_hierarchy
from repro.util.clock import WallClock


@pytest.fixture
def wall_processor(sky_engine) -> BoundedQueryProcessor:
    hierarchy = build_hierarchy(
        "PhotoObjAll", UniformPolicy(layer_sizes=(10_000, 1_000, 100)), rng=77
    )
    rebuild_from_base(hierarchy, sky_engine.catalog.table("PhotoObjAll"))
    return BoundedQueryProcessor(
        sky_engine.catalog, hierarchy, clock=WallClock()
    )


def cone() -> Query:
    return Query(
        table="PhotoObjAll",
        predicate=RadialPredicate("ra", "dec", 150.0, 10.0, 5.0),
        aggregates=[AggregateSpec("count")],
    )


class TestWallClockBudgets:
    def test_generous_seconds_budget_reaches_exact(self, wall_processor):
        outcome = wall_processor.execute(
            cone(),
            QualityContract(max_relative_error=0.0, time_budget=30.0),
        )
        assert outcome.met_quality
        assert outcome.achieved_error == 0.0
        assert outcome.total_cost < 30.0  # seconds actually spent

    def test_tiny_seconds_budget_still_answers(self, wall_processor):
        # estimated *cost* (tuples) never fits a 1e-9 second budget,
        # so only the mandatory smallest-layer answer runs
        outcome = wall_processor.execute(
            cone(), QualityContract(time_budget=1e-9)
        )
        assert outcome.result is not None
        assert len(outcome.attempts) == 1

    def test_spent_seconds_are_monotone_along_ladder(self, wall_processor):
        outcome = wall_processor.execute(
            cone(), QualityContract(max_relative_error=0.0)
        )
        assert outcome.total_cost >= 0.0
        assert all(a.cost >= 0.0 for a in outcome.attempts)
