"""Tests for collaborative workload intelligence.

The load-bearing property — pinned with hypothesis — is the identity
guarantee: mining, prewarming, and popularity-weighted maintenance are
*pure caching / scheduling* and never change what any query computes
or is charged.  A prewarmed engine and a cold engine running the same
seeded workload must produce byte-identical estimates, confidence
intervals, and charged units.  Everything else (miner determinism,
persistence round-trips, budget allocation, governor heat, rung
advice) supports that guarantee.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.columnstore import AggregateSpec, Query
from repro.columnstore.expressions import Between, RadialPredicate
from repro.core.contracts import Contract
from repro.core.engine import SciBorq
from repro.core.intelligence import WorkloadIntelligenceService
from repro.core.persistence import load_intelligence, save_intelligence
from repro.core.server import SciBorqServer
from repro.errors import ImpressionError
from repro.skyserver.generator import SkyGenerator, build_skyserver
from repro.skyserver.schema import DEC_RANGE, RA_RANGE, create_skyserver_catalog
from repro.skyserver.workload_gen import FocalPoint, WorkloadGenerator
from repro.workload.intelligence import (
    RegionPopularityModel,
    WorkloadMiner,
    paired_coordinates,
)
from repro.workload.log import QueryLog, QueryOutcome


def make_engine(seed: int = 701) -> SciBorq:
    engine = SciBorq(
        create_skyserver_catalog(),
        interest_attributes={"ra": RA_RANGE, "dec": DEC_RANGE},
        rng=seed,
    )
    engine.create_hierarchy(
        "PhotoObjAll", policy="uniform", layer_sizes=(5_000, 500)
    )
    build_skyserver(
        30_000, generator=SkyGenerator(rng=seed + 1), loader=engine.loader
    )
    return engine


def cone(ra: float, dec: float, radius: float) -> Query:
    return Query(
        table="PhotoObjAll",
        predicate=RadialPredicate("ra", "dec", ra, dec, radius),
        aggregates=[AggregateSpec("count"), AggregateSpec("avg", "r_mag")],
    )


def _same(a: float, b: float) -> bool:
    """Bit-for-bit float equality that treats NaN == NaN."""
    return a == b or (np.isnan(a) and np.isnan(b))


def small_model(bins: int = 8) -> RegionPopularityModel:
    return RegionPopularityModel("ra", "dec", (0.0, 360.0), (-90.0, 90.0), bins)


def seeded_log(count: int = 40, seed: int = 5) -> QueryLog:
    generator = WorkloadGenerator(
        focal_points=[FocalPoint(ra=180.0, dec=0.0, spread_ra=4.0)],
        rng=seed,
    )
    log = QueryLog()
    for i, query in enumerate(generator.queries(count)):
        entry = log.record(query)
        log.settle(
            entry.sequence,
            QueryOutcome(
                tuples_charged=100.0 + i,
                rungs_climbed=1 + i % 3,
                achieved_error=0.01 * (i % 5),
                wall_seconds=0.01,
                session_id=i % 2,
            ),
        )
    return log


# ----------------------------------------------------------------------
# RegionPopularityModel
# ----------------------------------------------------------------------
class TestModel:
    def test_observe_accumulates_popularity_and_profile(self):
        model = small_model()
        log = seeded_log(30)
        for entry in log.snapshot():
            model.observe_entry(entry)
        assert model.total > 0
        assert model.table_counts["PhotoObjAll"] == 30
        assert model.counts.sum() == model.total
        assert model.settled.sum() > 0
        # the focal cell dominates
        hot = model.hot_cells(1)[0]
        assert hot.contains(180.0, 0.0) or hot.share > 0.1

    def test_unpaired_queries_count_tables_but_not_cells(self):
        model = small_model()
        log = QueryLog()
        entry = log.record(
            Query(
                table="PhotoObjAll",
                predicate=Between("r_mag", 15.0, 16.0),
                aggregates=[AggregateSpec("count")],
            )
        )
        model.observe_entry(entry)
        assert model.total == 0
        assert model.table_counts["PhotoObjAll"] == 1

    def test_hot_cells_deterministic_under_ties(self):
        model = small_model()
        model.counts[1, 2] = 5
        model.counts[3, 4] = 5
        model.total = 10
        first = model.hot_cells(2)
        again = model.hot_cells(2)
        assert first == again
        # ties broken by flat cell index, ascending
        assert (first[0].x_lo, first[0].y_lo) < (first[1].x_lo, first[1].y_lo)

    def test_decay_cools_abandoned_regions(self):
        model = small_model()
        log = seeded_log(20)
        for entry in log.snapshot():
            model.observe_entry(entry)
        before = model.counts.sum()
        model.decay(0.5)
        assert 0 < model.counts.sum() < before
        assert model.total == model.counts.sum()
        for _ in range(20):
            model.decay(0.1)
        assert model.total == 0
        assert model.hot_cells(4) == []
        assert model.table_counts == {}

    def test_recommendation_requires_support(self):
        model = small_model()
        log = seeded_log(40)
        for entry in log.snapshot():
            model.observe_entry(entry)
        assert model.recommendation_at(0.0, -89.0, min_support=3) is None
        rec = model.recommendation_at(180.0, 0.0, min_support=3)
        assert rec is not None
        assert rec.support >= 3
        assert 1.0 <= rec.mean_rungs <= 3.0
        assert rec.expected_cost > 0
        assert rec.suggested_skip == max(0, int(np.floor(rec.mean_rungs)) - 1)
        assert "settled queries" in rec.describe()

    def test_table_share(self):
        model = small_model()
        model.table_counts = {"a": 3, "b": 1}
        assert model.table_share("a") == pytest.approx(0.75)
        assert model.table_share("missing") == 0.0

    def test_paired_coordinates_positional(self):
        query = cone(120.0, 30.0, 2.0)
        assert paired_coordinates(query, "ra", "dec") == [(120.0, 30.0)]
        assert paired_coordinates(query, "ra", "mjd") == []


# ----------------------------------------------------------------------
# WorkloadMiner: determinism + incrementality
# ----------------------------------------------------------------------
class TestMiner:
    def test_mining_is_deterministic(self):
        """Same seeded workload → bit-identical model, however batched."""
        log = seeded_log(60, seed=9)
        one_shot = WorkloadMiner(small_model(), decay_every=25)
        one_shot.mine(log)
        batched = WorkloadMiner(small_model(), decay_every=25)
        entries = log.snapshot()
        for start in range(0, len(entries), 7):
            batched.mine_entries(entries[start : start + 7])
        for name, array in one_shot.model.state_arrays().items():
            np.testing.assert_array_equal(
                array, batched.model.state_arrays()[name], err_msg=name
            )
        assert one_shot.model.total == batched.model.total
        assert one_shot.next_sequence == batched.next_sequence

    def test_entries_are_mined_exactly_once(self):
        log = seeded_log(10)
        miner = WorkloadMiner(small_model())
        assert miner.mine(log) == 10
        assert miner.mine(log) == 0
        assert miner.model.table_counts["PhotoObjAll"] == 10

    def test_decay_fires_on_cadence(self):
        log = seeded_log(30)
        miner = WorkloadMiner(small_model(), decay_factor=0.5, decay_every=10)
        miner.mine(log)
        # three aging passes happened: totals are well under 30 points
        assert miner.model.counts.sum() < 30


# ----------------------------------------------------------------------
# Persistence round-trip
# ----------------------------------------------------------------------
class TestPersistence:
    def test_round_trip_preserves_predictions(self, tmp_path):
        model = small_model()
        miner = WorkloadMiner(model)
        miner.mine(seeded_log(40))
        service = WorkloadIntelligenceService(model=model)
        path = save_intelligence(service, tmp_path / "intel")
        assert path.suffix == ".npz"
        loaded = load_intelligence(path)
        for name, array in model.state_arrays().items():
            np.testing.assert_array_equal(
                array, loaded.state_arrays()[name], err_msg=name
            )
        assert loaded.total == model.total
        assert loaded.table_counts == model.table_counts
        assert loaded.hot_cells(4) == model.hot_cells(4)
        assert loaded.popularity(180.0, 0.0) == model.popularity(180.0, 0.0)
        rec = model.recommendation_at(180.0, 0.0, min_support=1)
        rec_loaded = loaded.recommendation_at(180.0, 0.0, min_support=1)
        assert rec == rec_loaded

    def test_bare_model_round_trips_too(self, tmp_path):
        model = small_model()
        WorkloadMiner(model).mine(seeded_log(10))
        path = save_intelligence(model, tmp_path / "bare")
        loaded = load_intelligence(path)
        assert loaded.total == model.total

    def test_wrong_kind_is_rejected(self, tmp_path):
        from repro.core.persistence import save_hierarchy

        engine = make_engine()
        path = save_hierarchy(
            engine.hierarchy("PhotoObjAll"), tmp_path / "layers"
        )
        with pytest.raises(ImpressionError, match="workload-intelligence"):
            load_intelligence(path)

    def test_service_resumes_mining_from_loaded_model(self, tmp_path):
        model = small_model()
        WorkloadMiner(model).mine(seeded_log(10))
        path = save_intelligence(model, tmp_path / "resume")
        service = WorkloadIntelligenceService(model=load_intelligence(path))
        assert service.model.total == model.total
        assert service.miner is not None


# ----------------------------------------------------------------------
# The identity property: intelligence never changes answers
# ----------------------------------------------------------------------
class TestIdentity:
    @pytest.fixture(scope="class")
    def engine_pair(self):
        """A cold engine and an intelligence-equipped twin, trained on
        the same seeded workload."""
        cold = make_engine()
        warm = make_engine()
        service = WorkloadIntelligenceService(
            bins=12, hot_cells=4, prewarm_every=8
        )
        warm.set_intelligence(service)
        generator = WorkloadGenerator(
            focal_points=[FocalPoint(ra=185.0, dec=0.0, spread_ra=3.0)],
            cone_fraction=1.0,
            aggregate_fraction=1.0,
            rng=31,
        )
        for query in generator.queries(24):
            cold.execute(query, Contract.within_error(0.3))
            warm.execute(query, Contract.within_error(0.3))
        warm.mine_workload()
        warm.prewarm()
        return cold, warm

    @given(
        ra=st.floats(120.0, 250.0),
        dec=st.floats(-20.0, 20.0),
        radius=st.floats(1.0, 6.0),
        error=st.floats(0.05, 0.8),
    )
    @settings(max_examples=25, deadline=None)
    def test_prewarmed_engine_answers_byte_identically(
        self, engine_pair, ra, dec, radius, error
    ):
        cold, warm = engine_pair
        query = cone(ra, dec, radius)
        a = cold.execute(query, Contract.within_error(error))
        b = warm.execute(query, Contract.within_error(error))
        assert a.total_cost == b.total_cost
        assert len(a.attempts) == len(b.attempts)
        assert set(a.result.estimates) == set(b.result.estimates)
        for name, estimate in a.result.estimates.items():
            other = b.result.estimates[name]
            # bit-identical, treating NaN (an empty cone's avg) as equal
            assert _same(estimate.value, other.value), name
            assert _same(estimate.se, other.se), name
            assert np.array_equal(
                np.asarray(estimate.ci, dtype=float),
                np.asarray(other.ci, dtype=float),
                equal_nan=True,
            ), name

    def test_maintenance_reaction_is_identical_single_table(self, engine_pair):
        """With one mined table the popularity budget equals the full
        need, so drift reactions refresh exactly as a cold engine's."""
        cold, warm = engine_pair
        drift = WorkloadGenerator(
            focal_points=[FocalPoint(ra=40.0, dec=-30.0, spread_ra=2.0)],
            cone_fraction=1.0,
            aggregate_fraction=1.0,
            rng=77,
        )
        for query in drift.queries(40):
            cold.execute(query, Contract.within_error(0.5))
            warm.execute(query, Contract.within_error(0.5))
        warm.mine_workload()
        cold_reports = cold.maintain()
        warm_reports = warm.maintain()
        assert cold_reports.keys() == warm_reports.keys()
        for table in cold_reports:
            assert [
                (r.target, r.source, r.tuples_streamed)
                for r in cold_reports[table]
            ] == [
                (r.target, r.source, r.tuples_streamed)
                for r in warm_reports[table]
            ]
        probe = cone(40.0, -30.0, 3.0)
        a = cold.execute(probe, Contract.within_error(0.3))
        b = warm.execute(probe, Contract.within_error(0.3))
        assert a.total_cost == b.total_cost
        for name, estimate in a.result.estimates.items():
            assert _same(estimate.value, b.result.estimates[name].value), name


# ----------------------------------------------------------------------
# Popularity-weighted maintenance budgets
# ----------------------------------------------------------------------
def two_table_engine() -> SciBorq:
    """PhotoObjAll (5 000-row reflex layer) plus Photoz (400-row)."""
    engine = SciBorq(
        create_skyserver_catalog(),
        interest_attributes={"ra": RA_RANGE, "dec": DEC_RANGE},
        rng=701,
    )
    engine.create_hierarchy(
        "PhotoObjAll", policy="uniform", layer_sizes=(5_000, 500)
    )
    engine.create_hierarchy("Photoz", policy="uniform", layer_sizes=(400, 50))
    build_skyserver(
        30_000, generator=SkyGenerator(rng=702), loader=engine.loader
    )
    return engine


def force_ra_drift(engine: SciBorq) -> None:
    """Push the ra detector's recent window far from its history."""
    detector = engine.planner.detectors["ra"]
    rng = np.random.default_rng(3)
    detector.observe(rng.uniform(100.0, 110.0, 400))
    detector.observe(rng.uniform(300.0, 310.0, 200))
    assert detector.drifted


class TestBudgetedMaintenance:
    def test_unpopular_table_gets_partial_refresh(self):
        """Two hierarchies, one mined 9× more popular: the unpopular
        table's budget no longer affords its refresh pair."""
        engine = two_table_engine()
        service = WorkloadIntelligenceService(bins=8)
        engine.set_intelligence(service)
        service.model.table_counts = {"PhotoObjAll": 90, "Photoz": 10}
        force_ra_drift(engine)
        reports = engine.maintain()
        # popular table: full refresh (the one reflex→upper pair)
        assert len(reports["PhotoObjAll"]) == 1
        assert reports["PhotoObjAll"][0].tuples_streamed == 5_000
        # unpopular table: budget = 400 × (10/90) ≈ 44 tuples — the
        # 400-row lower pair no longer fits, nothing refreshable
        assert reports["Photoz"] == []

    def test_without_intelligence_everything_refreshes_in_full(self):
        engine = two_table_engine()
        force_ra_drift(engine)
        reports = engine.maintain()
        assert len(reports["PhotoObjAll"]) == 1
        assert len(reports["Photoz"]) == 1
        assert reports["Photoz"][0].tuples_streamed == 400

    def test_scoped_decay_spares_stable_attributes(self):
        engine = make_engine()
        rng = np.random.default_rng(4)
        # both attributes accumulate interest
        engine.interest.observe_values("ra", rng.uniform(100, 200, 300))
        engine.interest.observe_values("dec", rng.uniform(-30, 30, 300))
        ra_before = engine.interest.interest_for("ra").histogram.total
        dec_before = engine.interest.interest_for("dec").histogram.total
        force_ra_drift(engine)  # only ra drifts
        engine.maintain()
        ra_total = engine.interest.interest_for("ra").histogram.total
        dec_total = engine.interest.interest_for("dec").histogram.total
        assert ra_total < ra_before  # decayed
        assert dec_total == dec_before  # untouched


# ----------------------------------------------------------------------
# Governor heat
# ----------------------------------------------------------------------
BS = 64  # small blocks so the fact table has many demotable blocks


def blocked_engine(n: int = 6 * BS, seed: int = 3) -> SciBorq:
    """The tiered-storage test fixture: a fact table of full blocks."""
    from repro.columnstore import Catalog, Table
    from repro.columnstore.column import Column

    catalog = Catalog()
    catalog.add_table(
        Table(
            "fact",
            [
                Column("id", "int64", block_size=BS),
                Column("x", "float64", block_size=BS),
                Column("y", "float64", block_size=BS),
            ],
        )
    )
    engine = SciBorq(catalog, interest_attributes={"x": (0.0, 600.0)}, rng=17)
    engine.create_hierarchy("fact", policy="uniform", layer_sizes=(64,))
    rng = np.random.default_rng(seed)
    engine.loader.load_batch(
        "fact",
        {
            "id": np.arange(n),
            "x": np.sort(rng.uniform(0.0, 600.0, n)),
            "y": rng.normal(10.0, 2.0, n),
        },
    )
    return engine


class TestGovernorHeat:
    def test_predicted_hot_blocks_demote_last(self):
        from repro.core.governor import MemoryGovernor

        engine = blocked_engine()
        table = engine.catalog.table("fact")
        governor = MemoryGovernor(
            int(engine.memory_report()["ram_total"]) - 2_000
        )
        governor.set_heat_source(
            lambda table_name, block: 1.0 if block == 0 else 0.0
        )
        engine.set_memory_governor(governor)
        stats = governor.stats
        assert stats.demotions_warm + stats.demotions_cold > 0
        # heat leads the eviction order: the predicted-hot first block
        # of every column survives while cold-heat blocks demote
        for name in table.column_names:
            assert table.column(name).tier_of(0) == "hot", name

    def test_predicted_hot_blocks_promote_without_a_scan(self):
        from repro.core.governor import MemoryGovernor

        engine = blocked_engine()
        table = engine.catalog.table("fact")
        governor = MemoryGovernor(1)  # demote everything demotable
        engine.set_memory_governor(governor)
        assert not table.is_fully_hot
        assert table.column("x").tier_of(0) != "hot"
        governor.set_heat_source(
            lambda table_name, block: 1.0 if block == 0 else 0.0
        )
        governor.budget_bytes = 64 << 20
        engine.enforce_memory()
        # block 0 came back hot on prediction alone — it was never
        # scanned after demotion — while unscanned cold-heat blocks stay
        # demoted (pure LRU would have promoted nothing here)
        assert table.column("x").tier_of(0) == "hot"
        assert table.column("x").tier_of(1) != "hot"
        assert governor.stats.promotions > 0

    def test_without_heat_source_unscanned_blocks_stay_down(self):
        """Pure-LRU regression: no predictor → no prediction promotes."""
        from repro.core.governor import MemoryGovernor

        engine = blocked_engine()
        governor = MemoryGovernor(1)
        engine.set_memory_governor(governor)
        governor.budget_bytes = 64 << 20
        engine.enforce_memory()
        assert governor.stats.promotions == 0

    def test_broken_heat_source_never_stops_eviction(self):
        from repro.core.governor import MemoryGovernor

        engine = blocked_engine()

        def broken(table_name: str, block: int) -> float:
            raise RuntimeError("predictor crashed")

        governor = MemoryGovernor(
            int(engine.memory_report()["ram_total"]) - 1_000
        )
        governor.set_heat_source(broken)
        engine.set_memory_governor(governor)
        assert governor.stats.demotions_warm + governor.stats.demotions_cold
        assert governor.stats.last_footprint <= governor.budget_bytes


# ----------------------------------------------------------------------
# The service on a live server
# ----------------------------------------------------------------------
class TestServerIntegration:
    def test_server_mines_and_prewarms_on_cadence(self):
        service = WorkloadIntelligenceService(
            bins=12, hot_cells=2, prewarm_every=6, min_support=2
        )
        with SciBorqServer(
            make_engine(), max_workers=2, intelligence=service
        ) as server:
            session = server.open_session("astronomer")
            generator = WorkloadGenerator(
                focal_points=[FocalPoint(ra=185.0, dec=0.0, spread_ra=2.0)],
                cone_fraction=1.0,
                aggregate_fraction=1.0,
                rng=13,
            )
            for query in generator.queries(14):
                session.execute(query, max_relative_error=0.4)
            assert service.queries_mined == 14
            assert service.prewarm_passes >= 1
            assert "workload intelligence" in server.summary()
            assert "workload intelligence" in server.engine.summary()
            # the hot-region hit-rate is scored on post-prewarm arrivals
            assert service.prewarm_hit_rate is None or (
                0.0 <= service.prewarm_hit_rate <= 1.0
            )
            recommendation = session.recommend(cone(185.0, 0.0, 2.0))
            assert recommendation is not None
            assert recommendation.support >= 2
            assert session.recommend(cone(20.0, -80.0, 1.0)) is None
        # shutdown restored the engine's previous (absent) service
        assert server.engine.intelligence is None

    def test_intelligence_true_builds_default_service(self):
        with SciBorqServer(make_engine(), intelligence=True) as server:
            assert server.intelligence is not None
            assert server.engine.intelligence is server.intelligence

    def test_rung_advice_is_opt_in(self):
        engine = make_engine()
        service = WorkloadIntelligenceService(bins=8, min_support=1)
        engine.set_intelligence(service)
        # plant a mined profile that says "rung 3 on average"
        cell = service.model.cell_of(185.0, 0.0)
        service.model.settled[cell] = 10
        service.model.rungs_sum[cell] = 30.0
        ladder = [1, 2, 3]
        assert service.initial_rung(cone(185.0, 0.0, 2.0), ladder) == 0
        service.advise_rungs = True
        skip = service.initial_rung(cone(185.0, 0.0, 2.0), ladder)
        assert skip == 2  # floor(3.0) - 1
        assert service._recommendations_followed == 1

    def test_advisor_never_skips_the_whole_ladder(self):
        service = WorkloadIntelligenceService(
            bins=8, min_support=1, advise_rungs=True
        )
        service.model = RegionPopularityModel(
            "ra", "dec", (0.0, 360.0), (-90.0, 90.0), 8
        )
        cell = service.model.cell_of(185.0, 0.0)
        service.model.settled[cell] = 10
        service.model.rungs_sum[cell] = 90.0  # absurd mined mean
        assert service.initial_rung(cone(185.0, 0.0, 2.0), [1, 2]) <= 1

    def test_unbound_service_raises_with_guidance(self):
        service = WorkloadIntelligenceService()
        with pytest.raises(ImpressionError, match="set_intelligence"):
            service.mine(make_engine())
