"""Tests for the multi-session server layer.

The headline guarantee — pinned deterministically here — is zero
cross-session budget leakage: a query's reported ``total_cost`` under
concurrent execution equals, exactly, what the same query costs run
alone on an identical engine.  Everything else (locking discipline,
session lifecycle, contract defaults) supports that guarantee.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.columnstore import AggregateSpec, Query
from repro.columnstore.expressions import RadialPredicate
from repro.core.engine import SciBorq
from repro.core.server import SciBorqServer
from repro.errors import SessionError
from repro.skyserver.generator import SkyGenerator, build_skyserver
from repro.skyserver.schema import DEC_RANGE, RA_RANGE, create_skyserver_catalog
from repro.util.concurrency import ReadWriteLock


def make_engine() -> SciBorq:
    """A deterministic engine; two calls produce identical state."""
    engine = SciBorq(
        create_skyserver_catalog(),
        interest_attributes={"ra": RA_RANGE, "dec": DEC_RANGE},
        rng=401,
    )
    engine.create_hierarchy(
        "PhotoObjAll", policy="uniform", layer_sizes=(5_000, 500)
    )
    build_skyserver(
        30_000, generator=SkyGenerator(rng=402), loader=engine.loader
    )
    return engine


def cone(ra: float, radius: float) -> Query:
    return Query(
        table="PhotoObjAll",
        predicate=RadialPredicate("ra", "dec", ra, 10.0, radius),
        aggregates=[AggregateSpec("count")],
    )


#: (center ra, radius, max_relative_error) per session "user".
WORKLOADS = {
    "alice": [(150.0, 5.0, 0.05), (170.0, 3.0, 0.5), (200.0, 8.0, 0.1)],
    "bob": [(210.0, 2.0, 0.5), (130.0, 6.0, 0.02), (190.0, 4.0, 0.2)],
    "carol": [(160.0, 7.0, 0.3), (220.0, 5.0, 0.05), (140.0, 3.0, 0.5)],
    "dave": [(180.0, 6.0, 0.1), (150.0, 2.0, 0.5), (230.0, 7.0, 0.02)],
}


class TestCrossSessionIsolation:
    def test_concurrent_costs_equal_serial_costs_exactly(self):
        """The ISSUE's deterministic regression: zero budget leakage.

        Four sessions run interleaved on a thread pool; every query's
        ``total_cost`` must equal — exactly, under the deterministic
        CostClock — the cost of the same query run serially on an
        identically-seeded engine.
        """
        serial_engine = make_engine()
        serial_costs = {}
        for user, specs in WORKLOADS.items():
            for ra, radius, error in specs:
                outcome = serial_engine.execute(
                    cone(ra, radius), max_relative_error=error
                )
                serial_costs[(user, ra, radius)] = outcome.total_cost

        with SciBorqServer(make_engine(), max_workers=4) as server:
            sessions = {user: server.open_session(user) for user in WORKLOADS}
            jobs, keys = [], []
            # interleave users round-robin so the pool mixes sessions
            for position in range(3):
                for user, specs in WORKLOADS.items():
                    ra, radius, error = specs[position]
                    jobs.append(
                        (
                            sessions[user],
                            cone(ra, radius),
                            sessions[user].contract(max_relative_error=error),
                            None,
                        )
                    )
                    keys.append((user, ra, radius))
            outcomes = server.execute_jobs(jobs)

            for key, outcome in zip(keys, outcomes):
                assert outcome.total_cost == serial_costs[key], key
                # total_cost is also internally consistent: the sum of
                # the attempts' own charges
                assert outcome.total_cost == sum(
                    attempt.cost for attempt in outcome.attempts
                )

            # session clocks partition the engine clock exactly
            engine_total = server.engine.clock.now
            session_total = sum(s.clock.now for s in sessions.values())
            assert engine_total == session_total
            for user, session in sessions.items():
                expected = sum(
                    serial_costs[(user, ra, radius)]
                    for ra, radius, _ in WORKLOADS[user]
                )
                assert session.total_cost == expected

    def test_per_session_logs_see_only_their_queries(self):
        with SciBorqServer(make_engine(), max_workers=2) as server:
            alice = server.open_session("alice")
            bob = server.open_session("bob")
            alice.execute_many([cone(150.0, 5.0), cone(160.0, 5.0)])
            bob.execute(cone(200.0, 3.0))
            assert len(alice.query_log) == 2
            assert len(bob.query_log) == 1
            # the shared engine log feeds the global interest model
            assert len(server.engine.query_log) == 3

    def test_every_query_path_records_in_the_session_log(self):
        """The unification regression: execute, submit, and
        execute_exact all record into ``session.query_log`` (at
        submission time), not just the exact path."""
        with SciBorqServer(make_engine(), max_workers=2) as server:
            session = server.open_session("all-paths")
            session.execute(cone(150.0, 5.0), max_relative_error=0.5)
            session.submit(cone(160.0, 5.0)).result()
            server.execute_exact(session, cone(170.0, 5.0))
            assert len(session.query_log) == 3
            assert len(server.engine.query_log) == 3

    def test_engine_log_settles_with_session_outcomes(self):
        """Server-driven executions settle their engine-log entries
        with outcome metadata carrying the owning session's id."""
        with SciBorqServer(make_engine(), max_workers=2) as server:
            alice = server.open_session("alice")
            outcome = alice.execute(cone(150.0, 5.0), max_relative_error=0.5)
            alice.submit(cone(160.0, 5.0)).result()
            server.execute_exact(alice, cone(170.0, 5.0))
            entries = server.engine.query_log.snapshot()
            assert len(entries) == 3
            assert all(e.settled for e in entries)
            assert all(
                e.outcome.session_id == alice.session_id for e in entries
            )
            blocking = entries[0].outcome
            assert blocking.tuples_charged == outcome.total_cost
            assert blocking.rungs_climbed == len(outcome.attempts)
            assert blocking.wall_seconds >= 0.0
            assert not blocking.degraded
            exact = entries[2].outcome
            assert exact.rungs_climbed == 1
            assert exact.achieved_error == 0.0


class TestSessionLifecycle:
    def test_session_defaults_and_overrides(self):
        with SciBorqServer(make_engine()) as server:
            session = server.open_session(
                "strict-user", max_relative_error=0.1, time_budget=50_000
            )
            contract = session.contract()
            assert contract.max_relative_error == 0.1
            assert contract.time_budget == 50_000
            override = session.contract(max_relative_error=0.9)
            assert override.max_relative_error == 0.9
            assert override.time_budget == 50_000  # default survives

    def test_budgeted_session_reports_spend_within_budget(self):
        with SciBorqServer(make_engine()) as server:
            session = server.open_session("frugal", time_budget=6_000)
            outcome = session.execute(cone(150.0, 5.0))
            assert outcome.met_budget
            assert outcome.total_cost <= 6_000

    def test_closed_session_rejects_execution(self):
        with SciBorqServer(make_engine()) as server:
            session = server.open_session()
            session.close()
            assert session.closed
            with pytest.raises(SessionError, match="closed"):
                session.execute(cone(150.0, 5.0))
            assert session not in server.sessions

    def test_shutdown_closes_sessions_and_rejects_new_ones(self):
        server = SciBorqServer(make_engine())
        session = server.open_session()
        server.shutdown()
        assert session.closed
        with pytest.raises(SessionError, match="shut down"):
            server.open_session()
        server.shutdown()  # idempotent

    def test_strict_batch_with_return_exceptions(self):
        """A strict batch returns each failure in place, keeping the
        completed siblings' results."""
        from repro.errors import QualityBoundError

        with SciBorqServer(make_engine(), max_workers=2) as server:
            session = server.open_session("strict", strict=True)
            results = session.execute_many(
                [cone(150.0, 5.0), cone(170.0, 3.0)],
                max_relative_error=1e-12,
                time_budget=600,  # only the smallest layer fits: bound missed
                return_exceptions=True,
            )
            assert all(isinstance(r, QualityBoundError) for r in results)
            ok = session.execute_many(
                [cone(150.0, 5.0), cone(170.0, 3.0)], max_relative_error=0.9
            )
            assert all(o.result is not None for o in ok)
            # without the flag, the first failure re-raises after the gather
            with pytest.raises(QualityBoundError):
                session.execute_many(
                    [cone(150.0, 5.0)], max_relative_error=1e-12, time_budget=600
                )

    def test_session_stats_roll_up(self):
        with SciBorqServer(make_engine()) as server:
            session = server.open_session("counter")
            session.execute(cone(150.0, 5.0), max_relative_error=0.5)
            stats = session.report()
            assert stats.queries == 1
            assert stats.total_cost == session.total_cost > 0
            assert server.queries_served == 1


class TestWriterPaths:
    def test_ingest_between_query_batches(self):
        with SciBorqServer(make_engine(), max_workers=2) as server:
            session = server.open_session()
            before = session.execute(cone(150.0, 5.0))
            base_rows = server.engine.catalog.table("PhotoObjAll").num_rows
            generator = SkyGenerator(rng=403)
            server.ingest("PhotoObjAll", generator.photoobj_batch(2_000))
            assert (
                server.engine.catalog.table("PhotoObjAll").num_rows
                == base_rows + 2_000
            )
            after = session.execute(cone(150.0, 5.0))
            assert after.result is not None
            assert before.result is not None

    def test_concurrent_queries_and_ingest_smoke(self):
        """Readers and a writer interleave without corrupting state."""
        with SciBorqServer(make_engine(), max_workers=4) as server:
            sessions = [server.open_session(f"u{i}") for i in range(3)]
            stop = threading.Event()
            errors: list[BaseException] = []

            def keep_ingesting() -> None:
                generator = SkyGenerator(rng=404)
                try:
                    while not stop.is_set():
                        server.ingest(
                            "PhotoObjAll", generator.photoobj_batch(500)
                        )
                        time.sleep(0.001)
                except BaseException as exc:  # noqa: BLE001 - surfaced below
                    errors.append(exc)

            writer = threading.Thread(target=keep_ingesting)
            writer.start()
            try:
                for _ in range(3):
                    jobs = [
                        (session, cone(150.0 + 10 * i, 5.0))
                        for i, session in enumerate(sessions)
                    ]
                    outcomes = server.execute_many(jobs)
                    assert all(o.result is not None for o in outcomes)
            finally:
                stop.set()
                writer.join(timeout=30)
            assert not errors
            assert not writer.is_alive()


class TestReadWriteLock:
    def test_many_readers_coexist(self):
        lock = ReadWriteLock()
        with lock.read_locked():
            with lock.read_locked():
                assert lock.readers == 2

    def test_writer_excludes_readers(self):
        lock = ReadWriteLock()
        order: list[str] = []
        ready = threading.Event()

        def reader() -> None:
            ready.set()
            with lock.read_locked():
                order.append("reader")

        lock.acquire_write()
        thread = threading.Thread(target=reader)
        thread.start()
        ready.wait(timeout=5)
        time.sleep(0.02)  # reader is now blocked on the write side
        order.append("writer")
        lock.release_write()
        thread.join(timeout=5)
        assert order == ["writer", "reader"]

    def test_waiting_writer_blocks_new_readers(self):
        lock = ReadWriteLock()
        lock.acquire_read()
        writer_entered = threading.Event()

        def writer() -> None:
            with lock.write_locked():
                writer_entered.set()

        thread = threading.Thread(target=writer)
        thread.start()
        time.sleep(0.02)  # writer is now queued
        late_reader_done = threading.Event()

        def late_reader() -> None:
            with lock.read_locked():
                late_reader_done.set()

        late = threading.Thread(target=late_reader)
        late.start()
        time.sleep(0.02)
        # writer preference: the late reader must still be waiting
        assert not late_reader_done.is_set()
        lock.release_read()
        thread.join(timeout=5)
        late.join(timeout=5)
        assert writer_entered.is_set() and late_reader_done.is_set()

    def test_unbalanced_release_raises(self):
        lock = ReadWriteLock()
        with pytest.raises(RuntimeError):
            lock.release_read()
        with pytest.raises(RuntimeError):
            lock.release_write()
