"""Tests for the biased-sampling reservoir (paper Figure 6)."""

import numpy as np
import pytest

from repro.errors import SamplingError
from repro.sampling.biased import BiasedReservoir
from repro.stats.estimators import hajek_mean, ht_count


def step_mass(lo: int, hi: int, focal: float = 30.0, other: float = 0.3):
    """Interest mass: ``focal`` inside [lo, hi), ``other`` elsewhere."""

    def mass(batch):
        x = batch["x"]
        return np.where((x >= lo) & (x < hi), focal, other)

    return mass


def stream(sampler: BiasedReservoir, n: int, chunks: int = 20) -> None:
    for chunk in np.array_split(np.arange(n), chunks):
        sampler.offer_batch(chunk, {"x": chunk})


class TestConfiguration:
    def test_requires_callable_mass(self):
        with pytest.raises(SamplingError, match="callable"):
            BiasedReservoir(10, mass_fn="nope")

    def test_requires_batch_values(self):
        sampler = BiasedReservoir(10, step_mass(0, 1), rng=0)
        sampler.offer_batch(np.arange(10))  # initial fill needs no mass
        with pytest.raises(SamplingError, match="column values"):
            sampler.offer_batch(np.arange(10, 20))

    def test_mass_length_mismatch(self):
        sampler = BiasedReservoir(5, lambda batch: np.ones(3), rng=0)
        sampler.offer_batch(np.arange(5), {"x": np.arange(5)})
        with pytest.raises(SamplingError, match="weights for"):
            sampler.offer_batch(np.arange(5, 10), {"x": np.arange(5)})

    def test_negative_mass_rejected(self):
        sampler = BiasedReservoir(5, lambda batch: -np.ones(5), rng=0)
        sampler.offer_batch(np.arange(5), {"x": np.arange(5)})
        with pytest.raises(SamplingError, match="non-negative"):
            sampler.offer_batch(np.arange(5, 10), {"x": np.arange(5, 10)})

    def test_negative_floor_rejected(self):
        with pytest.raises(SamplingError, match="uniform_floor"):
            BiasedReservoir(5, step_mass(0, 1), uniform_floor=-0.1)


class TestFocalConcentration:
    def test_focal_region_overrepresented(self):
        sampler = BiasedReservoir(1000, step_mass(40_000, 50_000), rng=1)
        stream(sampler, 100_000)
        focal_fraction = (
            (sampler.row_ids >= 40_000) & (sampler.row_ids < 50_000)
        ).mean()
        assert focal_fraction > 0.5  # population share is 0.1

    def test_zero_mass_regions_only_from_initial_fill(self):
        sampler = BiasedReservoir(500, step_mass(0, 50_000, focal=10.0, other=0.0), rng=2)
        stream(sampler, 100_000)
        outside = sampler.row_ids >= 50_000
        assert outside.mean() < 0.05

    def test_uniform_floor_preserves_outside_coverage(self):
        no_floor = BiasedReservoir(
            500, step_mass(0, 50_000, 10.0, 0.0), uniform_floor=0.0, rng=3
        )
        floored = BiasedReservoir(
            500, step_mass(0, 50_000, 10.0, 0.0), uniform_floor=0.5, rng=3
        )
        stream(no_floor, 100_000)
        stream(floored, 100_000)
        assert (floored.row_ids >= 50_000).mean() > (
            no_floor.row_ids >= 50_000
        ).mean()

    def test_unit_mass_behaves_like_algorithm_r(self):
        """With f̆·N ≡ 1 the Figure-6 probability is exactly n/cnt."""
        sampler = BiasedReservoir(1000, lambda batch: np.ones(len(batch["x"])), rng=4)
        stream(sampler, 50_000)
        mean_id = sampler.row_ids.mean()
        se = 50_000 / np.sqrt(12 * 1000)
        assert abs(mean_id - 25_000) < 4 * se


class TestEstimatorSupport:
    def test_ht_count_recovers_population(self):
        """HT over the biased impression estimates the focal-region
        count without bias, despite 10x overrepresentation."""
        estimates = []
        for seed in range(30):
            sampler = BiasedReservoir(800, step_mass(40_000, 50_000), rng=seed)
            stream(sampler, 80_000)
            ids = sampler.row_ids
            pis = sampler.inclusion_probabilities()
            matching = (ids >= 40_000) & (ids < 50_000)
            estimates.append(ht_count(pis[matching]).value)
        assert np.mean(estimates) == pytest.approx(10_000, rel=0.15)

    def test_hajek_mean_recovers_focal_mean(self):
        values_of = lambda ids: ids.astype(float)  # value == id
        estimates = []
        for seed in range(20):
            sampler = BiasedReservoir(800, step_mass(40_000, 50_000), rng=100 + seed)
            stream(sampler, 80_000)
            ids = sampler.row_ids
            pis = sampler.inclusion_probabilities()
            matching = (ids >= 40_000) & (ids < 50_000)
            estimates.append(
                hajek_mean(values_of(ids[matching]), pis[matching]).value
            )
        assert np.mean(estimates) == pytest.approx(45_000, rel=0.01)

    def test_inclusion_probabilities_in_unit_interval(self):
        sampler = BiasedReservoir(500, step_mass(0, 1000), rng=5)
        stream(sampler, 20_000)
        pis = sampler.inclusion_probabilities()
        assert (pis > 0).all() and (pis <= 1).all()
