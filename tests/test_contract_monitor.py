"""Tests for runtime contract monitoring and tiered quality gates.

Covers the monitor end to end: tier presets and their survival
through modifiers and session overrides, the pure-fold aggregation
property (one-shot equals incremental, fleet compliance equals
per-query ground truth — as a hypothesis property over synthetic
verdict streams), byte-identity of monitored vs monitor-disabled
execution, gate floor boundary cases, per-tenant isolation, the
100%-shed regression (sheds count in the denominator), the typed
``report()`` objects rendering the legacy ``summary()`` strings
byte-for-byte, and the ``stats()`` deprecation shim.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Contract, SciBorqServer
from repro.columnstore import AggregateSpec, Query
from repro.columnstore.expressions import RadialPredicate
from repro.core.admission import AdmissionController, RejectedQuery
from repro.core.engine import SciBorq
from repro.core.monitor import (
    UNTIERED,
    VERDICT_STATUSES,
    ContractMonitor,
    ContractVerdict,
    GateSpec,
    MetricGate,
    SlaBucket,
)
from repro.errors import QueryError
from repro.skyserver.generator import SkyGenerator, build_skyserver
from repro.skyserver.schema import DEC_RANGE, RA_RANGE, create_skyserver_catalog


def cone_count(ra=150.0, dec=10.0, radius=5.0) -> Query:
    return Query(
        table="PhotoObjAll",
        predicate=RadialPredicate("ra", "dec", ra, dec, radius),
        aggregates=[AggregateSpec("count")],
    )


def tiny_engine(seed: int = 7100, n: int = 8_000) -> SciBorq:
    """A small deterministic engine; equal seeds -> identical state."""
    engine = SciBorq(
        create_skyserver_catalog(),
        interest_attributes={"ra": RA_RANGE, "dec": DEC_RANGE},
        rng=seed,
    )
    engine.create_hierarchy(
        "PhotoObjAll", policy="uniform", layer_sizes=(2_000, 200)
    )
    build_skyserver(
        n, generator=SkyGenerator(rng=seed + 1), loader=engine.loader
    )
    return engine


def make_verdict(
    status: str,
    tier=None,
    session_id=None,
    achieved_error=None,
    run_seconds=None,
    spent=1.0,
) -> ContractVerdict:
    return ContractVerdict(
        status=status,
        table="PhotoObjAll",
        tier=tier,
        session_id=session_id,
        session_name=None,
        promised_error=0.05,
        achieved_error=achieved_error,
        promised_budget=None,
        spent=spent,
        queue_seconds=None,
        run_seconds=run_seconds,
        wall_seconds=run_seconds,
        reason="queue_full" if status == "rejected" else None,
    )


# ======================================================================
# Tier presets
# ======================================================================
class TestTierPresets:
    def test_preset_fields(self):
        assert Contract.bronze() == Contract(
            max_relative_error=0.10, tier="bronze"
        )
        assert Contract.silver() == Contract(
            max_relative_error=0.05, tier="silver"
        )
        assert Contract.gold() == Contract(
            max_relative_error=0.01, confidence=0.99, tier="gold"
        )

    def test_preset_resolution(self):
        assert Contract.preset("gold") == Contract.gold()
        assert Contract.preset(" Silver ") == Contract.silver()
        with pytest.raises(QueryError, match="unknown contract tier"):
            Contract.preset("platinum")

    def test_describe_names_the_tier(self):
        assert Contract.gold().describe() == (
            "Contract(gold: error<=0.01, conf=0.99)"
        )
        # untiered contracts render exactly as before
        assert Contract.within_error(0.05).describe() == (
            "Contract(error<=0.05)"
        )

    def test_modifiers_keep_tier_combination_drops_it(self):
        assert Contract.gold().strictly().tier == "gold"
        assert Contract.silver().with_confidence(0.9).tier == "silver"
        combined = Contract.gold() & Contract.within_budget(1_000)
        assert combined.tier is None
        assert combined.max_relative_error == 0.01

    def test_session_override_keeps_tier_unless_error_changes(self, rng):
        engine = tiny_engine()
        with SciBorqServer(engine, max_workers=1) as server:
            session = server.open_session("tiered", contract="gold")
            assert session.defaults.tier == "gold"
            # a budget override keeps the quality promise -> keeps tier
            assert session.contract(time_budget=50_000).tier == "gold"
            # changing the error bound is no longer the preset's promise
            assert session.contract(max_relative_error=0.2).tier is None


# ======================================================================
# Aggregation exactness (the pure-fold property)
# ======================================================================
verdict_strategy = st.builds(
    make_verdict,
    status=st.sampled_from(VERDICT_STATUSES),
    tier=st.sampled_from([None, "bronze", "silver", "gold"]),
    session_id=st.sampled_from([None, 0, 1, 2]),
    achieved_error=st.one_of(
        st.none(), st.floats(min_value=0.0, max_value=2.0)
    ),
    run_seconds=st.one_of(
        st.none(), st.floats(min_value=0.0, max_value=30.0)
    ),
    spent=st.floats(min_value=0.0, max_value=1e6),
)


class TestAggregationExactness:
    @settings(max_examples=60, deadline=None)
    @given(
        verdicts=st.lists(verdict_strategy, max_size=60),
        split=st.integers(min_value=0, max_value=60),
    )
    def test_one_shot_equals_incremental(self, verdicts, split):
        """Every aggregate is an additive fold: feeding the same
        verdicts in any grouping (with intermediate reads) produces
        the identical report."""
        one_shot = ContractMonitor()
        for verdict in verdicts:
            one_shot.record(verdict)
        incremental = ContractMonitor()
        for verdict in verdicts[: min(split, len(verdicts))]:
            incremental.record(verdict)
        incremental.report()  # a mid-stream read must not perturb
        for verdict in verdicts[min(split, len(verdicts)):]:
            incremental.record(verdict)
        assert one_shot.report() == incremental.report()

    @settings(max_examples=60, deadline=None)
    @given(verdicts=st.lists(verdict_strategy, max_size=60))
    def test_fleet_compliance_is_per_query_ground_truth(self, verdicts):
        monitor = ContractMonitor()
        for verdict in verdicts:
            monitor.record(verdict)
        report = monitor.report()
        met = sum(1 for v in verdicts if v.status == "met")
        assert report.observed == len(verdicts)
        assert report.met == met
        expected = met / len(verdicts) if verdicts else 1.0
        assert report.compliance == expected
        # per-tier buckets partition the stream exactly
        for tier, bucket in report.by_tier.items():
            members = [
                v for v in verdicts if (v.tier or UNTIERED) == tier
            ]
            assert bucket.total == len(members)
            assert bucket.met == sum(
                1 for v in members if v.status == "met"
            )
        assert sum(b.total for b in report.by_tier.values()) == len(verdicts)

    def test_unknown_status_rejected(self):
        from dataclasses import replace

        bad = replace(make_verdict("met"), status="mystery")
        with pytest.raises(ValueError, match="unknown verdict status"):
            ContractMonitor().record(bad)

    def test_violation_log_is_bounded(self):
        monitor = ContractMonitor(violation_retention=3)
        for index in range(10):
            monitor.record(make_verdict("missed", session_id=index))
        violations = monitor.report().violations
        assert len(violations) == 3
        assert [v.session_id for v in violations] == [7, 8, 9]


# ======================================================================
# Byte-identity: monitoring never intrudes
# ======================================================================
class TestByteIdentity:
    def trace(self, outcome):
        estimates = {
            name: (est.value, est.se)
            for name, est in (outcome.result.estimates or {}).items()
        }
        attempts = tuple(
            (a.source, a.rows, a.cost, a.relative_error, a.satisfied)
            for a in outcome.attempts
        )
        return (
            outcome.total_cost,
            outcome.achieved_error,
            estimates,
            attempts,
        )

    def test_monitored_run_identical_to_disabled(self):
        queries = [cone_count(150.0 + 10 * i) for i in range(4)]
        contracts = [
            Contract.gold(),
            Contract.silver(),
            Contract.within_budget(1.0),  # a genuine miss
            Contract.bronze(),
        ]
        runs = {}
        for arm, monitor in (("off", False), ("on", None)):
            engine = tiny_engine(seed=7300)
            with SciBorqServer(
                engine, max_workers=1, monitor=monitor
            ) as server:
                session = server.open_session("twin")
                runs[arm] = [
                    self.trace(session.execute(q, c))
                    for q, c in zip(queries, contracts)
                ]
                if monitor is None:
                    assert server.monitor is not None
                    assert server.monitor.observed == len(queries)
                else:
                    assert server.monitor is None
                    assert server.report().sla is None
            # shutdown hands the engine back monitor-free
            assert engine.monitor is None
        assert runs["on"] == runs["off"]


# ======================================================================
# Quality gates
# ======================================================================
class TestQualityGates:
    def seeded(self, tier: str, met: int, missed: int) -> ContractMonitor:
        monitor = ContractMonitor()
        for _ in range(met):
            monitor.record(make_verdict("met", tier=tier))
        for _ in range(missed):
            monitor.record(make_verdict("missed", tier=tier))
        return monitor

    def test_floor_boundary_pass_and_fail(self):
        # exactly at the floor passes (>=), one miss more fails
        at_floor = self.seeded("gold", met=99, missed=1)
        assert at_floor.check_gates({"gold": 0.99}).passed
        below = self.seeded("gold", met=98, missed=2)
        report = below.check_gates({"gold": 0.99})
        assert not report.passed
        assert report.failures[0].gate == "tier:gold"
        assert report.failures[0].value == pytest.approx(0.98)

    def test_unobserved_tier_passes_vacuously(self):
        monitor = self.seeded("silver", met=5, missed=0)
        report = monitor.check_gates({"gold": 0.99, "silver": 0.95})
        assert report.passed
        gold = next(r for r in report.results if r.gate == "tier:gold")
        assert gold.value is None and "no gold queries" in gold.detail

    def test_spec_coercion_shapes(self):
        bare = GateSpec.coerce({"gold": 0.99})
        assert bare.floors == {"gold": 0.99} and bare.metrics == ()
        full = GateSpec.coerce(
            {
                "floors": {"silver": 0.95},
                "metrics": [
                    {
                        "artifact": "contract_monitor",
                        "metric": "overhead_ratio",
                        "max": 0.02,
                        "required": True,
                    }
                ],
            }
        )
        assert full.metrics == (
            MetricGate(
                artifact="contract_monitor",
                metric="overhead_ratio",
                max_value=0.02,
                required=True,
            ),
        )
        with pytest.raises(TypeError, match="gate spec"):
            GateSpec.coerce("gold>=0.99")

    def test_artifact_evaluator_matches_live(self, tmp_path):
        import json

        from repro.bench.gates import evaluate_artifacts

        monitor = self.seeded("gold", met=98, missed=2)
        live = monitor.check_gates({"gold": 0.99})
        bucket = monitor.report().by_tier["gold"]
        (tmp_path / "BENCH_contract_monitor.json").write_text(
            json.dumps(
                {
                    "benchmark": "contract_monitor",
                    "metrics": {
                        "overhead_ratio": 0.004,
                        "tiers": {
                            "gold": {
                                "observed": bucket.total,
                                "met": bucket.met,
                            }
                        },
                    },
                }
            )
        )
        offline = evaluate_artifacts(
            {
                "floors": {"gold": 0.99},
                "metrics": [
                    {
                        "artifact": "contract_monitor",
                        "metric": "overhead_ratio",
                        "max": 0.02,
                        "required": True,
                    }
                ],
            },
            str(tmp_path),
        )
        # the floor verdicts agree gate for gate
        assert [r.passed for r in offline.results[:1]] == [
            r.passed for r in live.results
        ]
        assert not offline.passed  # the floor fails in both
        metric = offline.results[-1]
        assert metric.passed and metric.value == pytest.approx(0.004)

    def test_required_artifact_missing_fails(self, tmp_path):
        from repro.bench.gates import DEFAULT_SPEC, evaluate_artifacts

        report = evaluate_artifacts(DEFAULT_SPEC, str(tmp_path))
        assert not report.passed
        assert any("missing" in r.detail for r in report.failures)


# ======================================================================
# Per-tenant isolation
# ======================================================================
class TestTenantIsolation:
    def test_sessions_aggregate_independently(self):
        monitor = ContractMonitor()
        monitor.note_session(1, "alice")
        monitor.note_session(2, "bob")
        for _ in range(4):
            monitor.record(make_verdict("met", session_id=1))
        monitor.record(make_verdict("missed", session_id=2))
        monitor.record(make_verdict("met", session_id=2))
        report = monitor.report()
        assert report.by_session[1] == SlaBucket(
            total=4, met=4, missed=0, degraded=0, rejected=0
        )
        assert report.by_session[2].compliance == 0.5
        assert report.session_names == {1: "alice", 2: "bob"}
        # one tenant's misses never leak into another's compliance
        assert report.by_session[1].compliance == 1.0

    def test_server_registers_session_names(self):
        engine = tiny_engine(seed=7500, n=4_000)
        with SciBorqServer(engine, max_workers=1) as server:
            alice = server.open_session("alice", contract="silver")
            bob = server.open_session("bob", contract="bronze")
            alice.execute(cone_count())
            bob.execute(cone_count(200.0))
            sla = server.report().sla
            assert sla.session_names[alice.session_id] == "alice"
            assert sla.session_names[bob.session_id] == "bob"
            assert sla.by_session[alice.session_id].total == 1
            assert sla.by_session[bob.session_id].total == 1
            assert sla.by_tier["silver"].total == 1
            assert sla.by_tier["bronze"].total == 1


# ======================================================================
# Sheds count in the denominator (the small fix)
# ======================================================================
class TestShedAccounting:
    def test_fully_shed_burst_reports_zero_compliance(self):
        engine = tiny_engine(seed=7700, n=4_000)
        controller = AdmissionController(max_inflight=1, queue_depth=1)
        with SciBorqServer(
            engine, max_workers=1, admission=controller
        ) as server:
            session = server.open_session("burst", contract="gold")
            blocker = server.open_session("blocker")
            # fill every slot and queue position with tickets nobody
            # drives, so the burst below sheds deterministically
            for _ in range(
                controller.max_inflight + controller.queue_depth
            ):
                controller.admit(blocker, cone_count(), Contract())
            slots = session.submit_many([cone_count()] * 5)
            assert all(isinstance(s, RejectedQuery) for s in slots)
            sla = server.report().sla
            assert sla.observed == 5
            assert sla.rejected == 5
            assert sla.compliance == 0.0  # not 100%: sheds count
            assert sla.by_tier["gold"].compliance == 0.0
            assert not server.monitor.check_gates({"gold": 0.99}).passed
            # the violation log carries the structured reason
            assert all(
                v.status == "rejected" and v.reason == "queue_full"
                for v in sla.violations
            )

    def test_rejection_carries_contract_tier(self):
        monitor = ContractMonitor()
        rejection = RejectedQuery(
            session_name="burst",
            session_id=3,
            query=cone_count(),
            reason="queue_full",
            retry_after=0.5,
            queued=4,
            inflight=1,
            contract=Contract.gold(),
        )
        verdict = monitor.observe_rejection(rejection)
        assert verdict.tier == "gold"
        assert verdict.status == "rejected"
        assert monitor.report().by_tier["gold"].rejected == 1


# ======================================================================
# Typed reports render the legacy summaries
# ======================================================================
class TestReportRendering:
    def test_server_summary_is_report_render(self):
        engine = tiny_engine(seed=7900, n=4_000)
        with SciBorqServer(engine, max_workers=1) as server:
            session = server.open_session("render", contract="silver")
            session.execute(cone_count())
            report = server.report()
            assert server.summary() == report.render()
            assert "sla: " in server.summary()
            assert report.sla.observed == 1
            assert report.queries_served == 1
            assert report.pool_workers == 1
            info = report.open_sessions[0]
            assert info.render() == repr(session)

    def test_engine_summary_is_report_render(self):
        engine = tiny_engine(seed=8100, n=4_000)
        assert engine.summary() == engine.report().render()
        assert "sla: " not in engine.summary()  # no monitor installed
        with SciBorqServer(engine, max_workers=1) as server:
            server.open_session("e").execute(cone_count())
            assert engine.summary() == engine.report().render()
            assert "sla: " in engine.summary()
            assert engine.report().sla.observed == 1
        # monitor detached again: the sla line disappears with it
        assert "sla: " not in engine.summary()

    def test_monitor_off_summary_has_no_sla_line(self):
        engine = tiny_engine(seed=8300, n=4_000)
        with SciBorqServer(engine, max_workers=1, monitor=False) as server:
            assert "sla: " not in server.summary()
            assert server.report().sla is None

    def test_progress_updates_carry_the_contract(self):
        engine = tiny_engine(seed=8500, n=4_000)
        contract = Contract.gold()
        handle = engine.submit(cone_count(), contract)
        updates = list(handle)
        outcome = handle.result()
        assert updates and all(u.contract == contract for u in updates)
        assert outcome.contract == contract
        assert outcome.describe().startswith("bounded execution [gold]:")

    def test_untiered_outcome_describe_unchanged(self):
        engine = tiny_engine(seed=8700, n=4_000)
        outcome = engine.execute(cone_count(), Contract.within_error(0.1))
        assert outcome.describe().startswith("bounded execution: ")


# ======================================================================
# Deprecation shim + server default contract
# ======================================================================
class TestApiMigration:
    def test_stats_warns_and_matches_report(self):
        engine = tiny_engine(seed=8900, n=4_000)
        with SciBorqServer(engine, max_workers=1) as server:
            session = server.open_session("legacy")
            session.execute(cone_count())
            fresh = session.report()
            with pytest.warns(DeprecationWarning, match="Session.stats"):
                legacy = session.stats()
            assert legacy == fresh

    def test_server_default_contract_applies(self):
        engine = tiny_engine(seed=9100, n=4_000)
        with SciBorqServer(
            engine, max_workers=1, contract="silver"
        ) as server:
            defaulted = server.open_session("d")
            assert defaulted.defaults == Contract.silver()
            # an explicit session contract always wins
            pinned = server.open_session("p", contract=Contract.gold())
            assert pinned.defaults == Contract.gold()
            # the deprecated per-field spelling wins over the server
            # default too (the caller did specify something)
            with pytest.warns(DeprecationWarning):
                legacy = server.open_session("l", max_relative_error=0.2)
            assert legacy.defaults.max_relative_error == 0.2
            assert legacy.defaults.tier is None

    def test_unknown_server_tier_raises(self):
        engine = tiny_engine(seed=9300, n=4_000)
        with pytest.raises(QueryError, match="unknown contract tier"):
            SciBorqServer(engine, max_workers=1, contract="diamond")
