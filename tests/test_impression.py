"""Tests for Impression objects."""

import numpy as np
import pytest

from repro.columnstore.query import AggregateSpec, Query
from repro.columnstore.table import Table
from repro.core.impression import PI_COLUMN, Impression
from repro.errors import ImpressionError
from repro.sampling.reservoir import ReservoirR


@pytest.fixture
def base() -> Table:
    return Table.from_arrays(
        "base",
        {
            "id": np.arange(1000),
            "x": np.linspace(0, 1, 1000),
            "y": np.linspace(10, 20, 1000),
        },
    )


@pytest.fixture
def impression(base) -> Impression:
    sampler = ReservoirR(100, rng=0)
    sampler.offer_batch(np.arange(base.num_rows))
    return Impression("base/test/L0", "base", sampler)


class TestConstruction:
    def test_metadata(self, impression):
        assert impression.capacity == 100
        assert impression.size == 100
        assert impression.layer == 0

    def test_name_required(self):
        with pytest.raises(ImpressionError, match="non-empty"):
            Impression("", "base", ReservoirR(10))

    def test_negative_layer_rejected(self):
        with pytest.raises(ImpressionError, match="layer"):
            Impression("i", "base", ReservoirR(10), layer=-1)


class TestMaterialise:
    def test_contains_sampled_rows_and_pi(self, base, impression):
        table = impression.materialise(base)
        assert table.num_rows == 100
        assert PI_COLUMN in table.column_names
        np.testing.assert_array_equal(
            np.sort(table["id"]), np.sort(impression.row_ids)
        )
        np.testing.assert_allclose(table[PI_COLUMN], 0.1)

    def test_cache_hit_returns_same_object(self, base, impression):
        assert impression.materialise(base) is impression.materialise(base)

    def test_cache_invalidated_by_sampler_progress(self, base, impression):
        first = impression.materialise(base)
        base.append_batch({"id": [1000], "x": [0.5], "y": [15.0]})
        impression.sampler.offer_batch(np.array([1000]))
        second = impression.materialise(base)
        assert second is not first

    def test_column_subset(self, base):
        sampler = ReservoirR(50, rng=1)
        sampler.offer_batch(np.arange(1000))
        imp = Impression("i", "base", sampler, columns=("x",))
        table = imp.materialise(base)
        assert table.column_names == ["x", PI_COLUMN]

    def test_stale_row_ids_detected(self, base):
        sampler = ReservoirR(10, rng=2)
        sampler.offer_batch(np.arange(5000))  # ids beyond base!
        imp = Impression("i", "base", sampler)
        with pytest.raises(ImpressionError, match="beyond"):
            imp.materialise(base)


class TestCovers:
    def test_full_impression_covers_base_columns(self, base, impression):
        q = Query(table="base", aggregates=[AggregateSpec("avg", "x")])
        assert impression.covers(q, base)

    def test_wrong_table_not_covered(self, base, impression):
        q = Query(table="other")
        assert not impression.covers(q, base)

    def test_column_subset_limits_coverage(self, base):
        sampler = ReservoirR(50, rng=3)
        sampler.offer_batch(np.arange(1000))
        imp = Impression("i", "base", sampler, columns=("x",))
        assert imp.covers(Query(table="base", aggregates=[AggregateSpec("avg", "x")]), base)
        assert not imp.covers(
            Query(table="base", aggregates=[AggregateSpec("avg", "y")]), base
        )


class TestInclusionOverride:
    def test_override_roundtrip(self, base, impression):
        override = np.full(impression.size, 0.05)
        impression.set_inclusion_override(override)
        np.testing.assert_array_equal(
            impression.inclusion_probabilities(), override
        )
        impression.set_inclusion_override(None)
        np.testing.assert_allclose(impression.inclusion_probabilities(), 0.1)

    def test_override_length_checked(self, impression):
        with pytest.raises(ImpressionError, match="length"):
            impression.set_inclusion_override(np.ones(3))

    def test_override_invalidates_cache(self, base, impression):
        first = impression.materialise(base)
        impression.set_inclusion_override(np.full(impression.size, 0.5))
        second = impression.materialise(base)
        assert second is not first
        np.testing.assert_allclose(second[PI_COLUMN], 0.5)

    def test_memory_bytes_positive(self, base, impression):
        assert impression.memory_bytes(base) > 0
