"""Tests for repro.util.rng."""

import numpy as np
import pytest

from repro.util.rng import ensure_rng, spawn_rngs


class TestEnsureRng:
    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = ensure_rng(42).random(5)
        b = ensure_rng(42).random(5)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        assert not np.allclose(ensure_rng(1).random(5), ensure_rng(2).random(5))

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert ensure_rng(gen) is gen

    def test_numpy_integer_seed_accepted(self):
        gen = ensure_rng(np.int64(7))
        assert isinstance(gen, np.random.Generator)

    def test_rejects_bad_type(self):
        with pytest.raises(TypeError, match="expected None, int"):
            ensure_rng("not-a-seed")


class TestSpawnRngs:
    def test_count_and_types(self):
        children = spawn_rngs(0, 4)
        assert len(children) == 4
        assert all(isinstance(c, np.random.Generator) for c in children)

    def test_children_are_independent_streams(self):
        a, b = spawn_rngs(5, 2)
        assert not np.allclose(a.random(10), b.random(10))

    def test_deterministic_given_seed(self):
        first = [g.random(3) for g in spawn_rngs(9, 2)]
        second = [g.random(3) for g in spawn_rngs(9, 2)]
        for x, y in zip(first, second):
            np.testing.assert_array_equal(x, y)

    def test_zero_children(self):
        assert spawn_rngs(1, 0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            spawn_rngs(1, -1)
