"""Tests for the Column storage primitive."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.columnstore.column import Column
from repro.errors import SchemaError


class TestConstruction:
    def test_empty(self):
        col = Column("x", "float64")
        assert len(col) == 0
        assert col.dtype == np.float64

    def test_with_values(self):
        col = Column("x", "int64", [1, 2, 3])
        np.testing.assert_array_equal(col.values, [1, 2, 3])

    def test_rejects_empty_name(self):
        with pytest.raises(SchemaError, match="non-empty"):
            Column("", "float64")

    def test_string_dtype(self):
        col = Column("s", "<U8", ["abc", "de"])
        assert col[0] == "abc"


class TestAppend:
    def test_append_scalar(self):
        col = Column("x", "float64")
        col.append(1.5)
        assert len(col) == 1 and col[0] == 1.5

    def test_extend_array(self):
        col = Column("x", "float64")
        col.extend(np.arange(5, dtype=float))
        assert len(col) == 5

    def test_growth_across_capacity_boundary(self):
        col = Column("x", "int64")
        for i in range(100):  # forces several regrows past _MIN_CAPACITY
            col.append(i)
        np.testing.assert_array_equal(col.values, np.arange(100))

    def test_extend_casts_int_to_float(self):
        col = Column("x", "float64")
        col.extend(np.array([1, 2], dtype=np.int64))
        assert col.dtype == np.float64

    def test_extend_rejects_2d(self):
        with pytest.raises(SchemaError, match="1-d"):
            Column("x", "float64").extend(np.zeros((2, 2)))

    def test_extend_rejects_incompatible_dtype(self):
        with pytest.raises(SchemaError):
            Column("x", "int64").extend(np.array([1.5, 2.5]))


class TestAccess:
    def test_values_view_is_readonly(self):
        col = Column("x", "float64", [1.0])
        with pytest.raises(ValueError):
            col.values[0] = 2.0

    def test_negative_indexing(self):
        col = Column("x", "int64", [10, 20, 30])
        assert col[-1] == 30

    def test_out_of_range_raises(self):
        col = Column("x", "int64", [1])
        with pytest.raises(IndexError, match="out of range"):
            col[5]

    def test_to_numpy_is_a_copy(self):
        col = Column("x", "float64", [1.0, 2.0])
        copy = col.to_numpy()
        copy[0] = 99.0
        assert col[0] == 1.0

    def test_slice_access(self):
        col = Column("x", "int64", [0, 1, 2, 3])
        np.testing.assert_array_equal(col[1:3], [1, 2])


class TestDerivation:
    def test_take(self):
        col = Column("x", "int64", [10, 20, 30])
        taken = col.take(np.array([2, 0]))
        np.testing.assert_array_equal(taken.values, [30, 10])

    def test_filter(self):
        col = Column("x", "int64", [1, 2, 3, 4])
        kept = col.filter(np.array([True, False, True, False]))
        np.testing.assert_array_equal(kept.values, [1, 3])

    def test_filter_length_mismatch(self):
        with pytest.raises(SchemaError, match="mask"):
            Column("x", "int64", [1, 2]).filter(np.array([True]))

    def test_nbytes_tracks_live_size_not_capacity(self):
        col = Column("x", "int64", [1])
        assert col.nbytes() == 8


class TestPropertyBased:
    @given(st.lists(st.integers(-(2**40), 2**40), max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_extend_preserves_contents(self, values):
        col = Column("x", "int64")
        col.extend(np.array(values, dtype=np.int64))
        np.testing.assert_array_equal(col.values, values)

    @given(
        st.lists(st.floats(allow_nan=False, allow_infinity=False), max_size=100),
        st.lists(st.floats(allow_nan=False, allow_infinity=False), max_size=100),
    )
    @settings(max_examples=50, deadline=None)
    def test_two_extends_equal_one(self, first, second):
        a = Column("x", "float64")
        a.extend(np.array(first + second, dtype=float))
        b = Column("x", "float64")
        b.extend(np.array(first, dtype=float))
        b.extend(np.array(second, dtype=float))
        np.testing.assert_array_equal(a.values, b.values)
