"""Tests for the benchmark harness and report helpers."""

import numpy as np

from repro.bench.harness import (
    build_experiment_context,
    figure4_series,
    figure7_series,
    sample_values,
)
from repro.bench.report import print_histogram_panel, print_series


class TestExperimentContext:
    def test_builds_requested_configuration(self):
        ctx = build_experiment_context(
            n_objects=5_000,
            policy="uniform",
            layer_sizes=(500, 50),
            warmup_queries=20,
            rng=1,
        )
        assert ctx.catalog.table("PhotoObjAll").num_rows == 5_000
        assert ctx.engine.hierarchy("PhotoObjAll").depth == 2
        assert ctx.engine.interest.total_observations() > 0

    def test_deterministic_under_seed(self):
        a = build_experiment_context(n_objects=2_000, layer_sizes=(200, 20), rng=9)
        b = build_experiment_context(n_objects=2_000, layer_sizes=(200, 20), rng=9)
        np.testing.assert_array_equal(
            a.catalog.table("PhotoObjAll")["ra"],
            b.catalog.table("PhotoObjAll")["ra"],
        )
        np.testing.assert_array_equal(
            a.engine.hierarchy("PhotoObjAll").layer(0).row_ids,
            b.engine.hierarchy("PhotoObjAll").layer(0).row_ids,
        )

    def test_sample_values_reads_one_layer(self):
        ctx = build_experiment_context(n_objects=2_000, layer_sizes=(200, 20), rng=3)
        values = sample_values(ctx.engine, "PhotoObjAll", 1, "ra")
        assert values.shape[0] == 20


class TestFigurePipelines:
    def test_figure4_outputs_aligned(self, rng):
        values = rng.normal(180, 10, 300)
        series = figure4_series(values, (120, 240), bins=20, grid_points=50)
        assert series["grid"].shape == (50,)
        for key in ("f_hat", "oversmoothed", "undersmoothed", "f_breve"):
            assert series[key].shape == (50,)
        assert series["hist_counts"].shape == (20,)
        assert series["hist_edges"].shape == (21,)

    def test_figure7_focal_metrics_require_density(self, rng):
        base = rng.uniform(0, 100, 10_000)
        sample_a = rng.uniform(0, 100, 500)
        sample_b = rng.normal(30, 5, 500).clip(0, 100)
        without = figure7_series(base, sample_a, sample_b, (0, 100), bins=10)
        assert "focal_bins" not in without
        density = np.zeros(10)
        density[3] = 0.1  # a focal bin around 30-40
        with_focal = figure7_series(
            base, sample_a, sample_b, (0, 100), bins=10, focal_density=density
        )
        assert with_focal["focal_bins"].sum() == 1
        assert (
            with_focal["biased_focal_fraction"][0]
            > with_focal["uniform_focal_fraction"][0]
        )


class TestReport:
    def test_print_series_returns_rendered_text(self, capsys):
        text = print_series("t", [1, 2, 3], {"a": [1, 4, 9]}, max_rows=2)
        captured = capsys.readouterr().out
        assert "== t ==" in text and text.strip() in captured.strip()

    def test_print_histogram_panel(self, capsys):
        text = print_histogram_panel("h", [1, 2], [0.0, 1.0, 2.0])
        assert "== h ==" in text
        assert capsys.readouterr().out
