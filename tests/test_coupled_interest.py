"""Tests for the 2-D coupled interest model (paper footnote 3)."""

import numpy as np
import pytest

from repro.columnstore.expressions import Between, RadialPredicate
from repro.columnstore.query import Query
from repro.workload.interest import CoupledInterest, InterestModel


@pytest.fixture
def coupled() -> CoupledInterest:
    return CoupledInterest("ra", "dec", (120.0, 240.0), (0.0, 60.0), bins=24)


def cone(ra: float, dec: float) -> Query:
    return Query(table="t", predicate=RadialPredicate("ra", "dec", ra, dec, 2.0))


class TestObservation:
    def test_observe_query_pairs_the_centre(self, coupled):
        coupled.observe_query(cone(150.0, 10.0))
        assert coupled.predicate_set_size == 1

    def test_single_attribute_query_contributes_nothing(self, coupled):
        coupled.observe_query(Query(table="t", predicate=Between("ra", 140, 160)))
        assert coupled.predicate_set_size == 0

    def test_collector_hook_pairs_fifo(self, coupled):
        coupled.observe_values("ra", np.array([150.0]))
        assert coupled.predicate_set_size == 0  # waiting for dec
        coupled.observe_values("dec", np.array([10.0]))
        assert coupled.predicate_set_size == 1

    def test_unrelated_attribute_ignored(self, coupled):
        coupled.observe_values("mjd", np.array([55_000.0]))
        assert coupled.predicate_set_size == 0


class TestMass:
    def test_cold_model_is_agnostic(self, coupled):
        mass = coupled.mass({"ra": np.array([150.0]), "dec": np.array([10.0])})
        np.testing.assert_array_equal(mass, [1.0])

    def test_missing_attribute_is_agnostic(self, coupled, rng):
        coupled.observe_pairs(rng.normal(150, 3, 100), rng.normal(10, 2, 100))
        mass = coupled.mass({"ra": np.array([150.0])})
        np.testing.assert_array_equal(mass, [1.0])

    def test_mass_peaks_at_observed_pairs(self, coupled, rng):
        coupled.observe_pairs(rng.normal(150, 3, 200), rng.normal(10, 2, 200))
        focal = coupled.mass({"ra": np.array([150.0]), "dec": np.array([10.0])})[0]
        distant = coupled.mass({"ra": np.array([230.0]), "dec": np.array([55.0])})[0]
        assert focal > 20 * max(distant, 1e-9)

    def test_distinguishes_true_targets_from_marginal_phantoms(self, rng):
        """The footnote-3 point: a workload visiting (150,10) and
        (205,40) should NOT mark (150,40) — but marginal histograms
        do, because ra=150 and dec=40 are both popular."""
        coupled = CoupledInterest("ra", "dec", (120, 240), (0, 60), bins=24)
        marginal = InterestModel(
            {"ra": (120.0, 240.0), "dec": (0.0, 60.0)}, bins=24
        )
        ra_a, dec_a = rng.normal(150, 3, 200), rng.normal(10, 2, 200)
        ra_b, dec_b = rng.normal(205, 3, 200), rng.normal(40, 2, 200)
        coupled.observe_pairs(
            np.concatenate([ra_a, ra_b]), np.concatenate([dec_a, dec_b])
        )
        marginal.observe_values("ra", np.concatenate([ra_a, ra_b]))
        marginal.observe_values("dec", np.concatenate([dec_a, dec_b]))

        phantom = {"ra": np.array([150.0]), "dec": np.array([40.0])}
        true_target = {"ra": np.array([150.0]), "dec": np.array([10.0])}
        # marginal model: phantom looks as hot as the true target
        assert marginal.mass(phantom)[0] > 0.5 * marginal.mass(true_target)[0]
        # coupled model: phantom is orders of magnitude colder
        assert coupled.mass(phantom)[0] < 0.1 * coupled.mass(true_target)[0]

    def test_decay(self, coupled, rng):
        coupled.observe_pairs(rng.normal(150, 3, 100), rng.normal(10, 2, 100))
        coupled.decay(0.5)
        assert coupled.predicate_set_size <= 50


class TestSamplingIntegration:
    def test_plugs_into_biased_reservoir(self, coupled, rng):
        from repro.sampling.biased import BiasedReservoir

        coupled.observe_pairs(rng.normal(150, 3, 300), rng.normal(10, 2, 300))
        sampler = BiasedReservoir(500, coupled.mass, rng=6)
        n = 50_000
        ra = rng.uniform(120, 240, n)
        dec = rng.uniform(0, 60, n)
        for chunk in np.array_split(np.arange(n), 10):
            sampler.offer_batch(
                chunk, {"ra": ra[chunk], "dec": dec[chunk]}
            )
        ids = sampler.row_ids
        focal = (
            (np.abs(ra[ids] - 150) < 10) & (np.abs(dec[ids] - 10) < 6)
        ).mean()
        population = (
            (np.abs(ra - 150) < 10) & (np.abs(dec - 10) < 6)
        ).mean()
        assert focal > 5 * population
