"""Tests for the exception hierarchy."""

import pytest

from repro.errors import (
    BudgetExceededError,
    EstimationError,
    ImpressionError,
    LoadError,
    QualityBoundError,
    QueryError,
    SamplingError,
    SchemaError,
    SciborqError,
    UnknownColumnError,
    UnknownTableError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "error_type",
        [
            SchemaError,
            QueryError,
            LoadError,
            SamplingError,
            ImpressionError,
            EstimationError,
        ],
    )
    def test_all_derive_from_base(self, error_type):
        assert issubclass(error_type, SciborqError)

    def test_unknown_table_is_schema_error(self):
        assert issubclass(UnknownTableError, SchemaError)

    def test_catch_all_at_api_boundary(self):
        try:
            raise UnknownColumnError("t", "c")
        except SciborqError as caught:
            assert caught.table == "t" and caught.column == "c"


class TestMessages:
    def test_unknown_table_names_the_table(self):
        assert "ghost" in str(UnknownTableError("ghost"))

    def test_unknown_column_names_both(self):
        message = str(UnknownColumnError("fact", "nope"))
        assert "fact" in message and "nope" in message

    def test_quality_bound_carries_both_errors(self):
        error = QualityBoundError(0.05, 0.2)
        assert error.requested == 0.05
        assert error.achieved == 0.2
        assert "0.05" in str(error) and "0.2" in str(error)

    def test_budget_exceeded_carries_figures(self):
        error = BudgetExceededError(100.0, 250.0)
        assert error.budget == 100.0
        assert error.required == 250.0
        assert "100" in str(error)
