"""Tests comparing production samplers against the literal pseudocode
transcriptions of paper Figures 2, 3 and 6."""

import numpy as np
import pytest

from repro.sampling.reference import (
    biased_reference,
    last_seen_reference,
    reservoir_r_reference,
    slot_histogram_last_seen,
)


class TestReservoirRReference:
    def test_size_and_membership(self):
        sample = reservoir_r_reference(range(1000), 50, rng=0)
        assert len(sample) == 50
        assert set(sample) <= set(range(1000))
        assert len(set(sample)) == 50

    def test_short_stream_keeps_everything(self):
        assert reservoir_r_reference(range(5), 10, rng=0) == list(range(5))

    def test_uniformity_matches_production(self):
        """Mean of kept ids ≈ stream mean for both implementations."""
        from repro.sampling.reservoir import ReservoirR

        ref_means, prod_means = [], []
        for seed in range(20):
            ref = reservoir_r_reference(range(20_000), 500, rng=seed)
            ref_means.append(np.mean(ref))
            prod = ReservoirR(500, rng=seed + 1000)
            prod.offer_batch(np.arange(20_000))
            prod_means.append(prod.row_ids.mean())
        assert np.mean(ref_means) == pytest.approx(10_000, rel=0.03)
        assert np.mean(prod_means) == pytest.approx(10_000, rel=0.03)


class TestLastSeenReference:
    def test_literal_pseudocode_freezes_high_slots(self):
        """The literal Figure-3 code only ever replaces slots below
        n·k/D, so the initial fill survives in the other slots — the
        artefact the production sampler corrects.  With k/D = 0.1 the
        steady-state recent fraction is pinned near 10%, not the ~63%
        a uniform-eviction reservoir reaches."""
        stream = range(100, 50_100)
        sample = last_seen_reference(stream, 100, daily_ingest=1000, keep=100, rng=1)
        recent = np.mean([s >= 40_000 for s in sample])
        initial_fill_survivors = np.mean([s < 200 for s in sample])
        assert recent == pytest.approx(0.1, abs=0.05)
        assert initial_fill_survivors > 0.8

    def test_slot_artifact_concentrates_low_slots(self):
        """The literal Figure-3 slot expression floor(n·rnd) with
        acceptance rnd < k/D only ever touches slots < n·k/D.  This
        documents the pseudocode artefact our production sampler
        deliberately corrects (see sampling/reference.py docstring)."""
        hits = slot_histogram_last_seen(
            total=50_000, n=100, daily_ingest=1000, keep=100, rng=2
        )
        # k/D = 0.1 -> only slots 0..9 can be hit
        assert hits[:10].sum() == hits.sum() > 0
        assert (hits[10:] == 0).all()

    def test_production_sampler_spreads_evictions(self):
        """Production Last Seen replaces slots uniformly, so long-run
        occupancy cannot be dominated by the first n·k/D slots."""
        from repro.sampling.last_seen import LastSeenReservoir

        sampler = LastSeenReservoir(100, daily_ingest=1000, rng=3)
        for day in range(50):
            sampler.offer_batch(np.arange(day * 1000, (day + 1) * 1000))
        # all slots should hold recent-ish tuples; if only slots <10
        # were replaced, 90% of the sample would still be from day 0
        from_day0 = (sampler.row_ids < 1000).mean()
        assert from_day0 < 0.2


class TestBiasedReference:
    def test_accepts_with_mass_pairs(self):
        stream = [(i, 2.0 if 400 <= i < 500 else 0.01) for i in range(2000)]
        sample = biased_reference(stream, 100, predicate_set_size=100, rng=4)
        focal = np.mean([400 <= s < 500 for s in sample])
        assert focal > 0.3  # population share is 0.05

    def test_accepts_with_mass_function(self):
        sample = biased_reference(
            range(2000),
            100,
            predicate_set_size=100,
            mass_fn=lambda i: 1.0 if i < 100 else 0.0,
            rng=5,
        )
        assert len(sample) == 100

    def test_zero_mass_tail_never_enters(self):
        stream = [(i, 1.0 if i < 200 else 0.0) for i in range(1000)]
        sample = biased_reference(stream, 50, predicate_set_size=50, rng=6)
        assert all(s < 200 for s in sample)

    def test_production_and_reference_both_concentrate_on_focal(self):
        """Interleaved focal tuples (every 20th id): both the literal
        pseudocode and the production sampler overrepresent the focal
        5% population share several-fold.  Exact shares differ because
        the literal code's slot reuse shields high slots from
        low-probability evictions (see module docstring)."""
        from repro.sampling.biased import BiasedReservoir

        def is_focal(i):
            return i % 20 == 0

        def mass_fn(batch):
            x = batch["x"]
            return np.where(x % 20 == 0, 3.0 * 100, 0.05 * 100)

        ref_shares, prod_shares = [], []
        for seed in range(15):
            stream = [
                (i, 3.0 if is_focal(i) else 0.05) for i in range(4000)
            ]
            ref = biased_reference(stream, 100, predicate_set_size=100, rng=seed)
            ref_shares.append(np.mean([is_focal(s) for s in ref]))
            prod = BiasedReservoir(100, mass_fn, rng=seed + 500)
            ids = np.arange(4000)
            prod.offer_batch(ids, {"x": ids})
            prod_shares.append((prod.row_ids % 20 == 0).mean())
        population_share = 0.05
        assert np.mean(ref_shares) > 3 * population_share
        assert np.mean(prod_shares) > 3 * population_share
