"""Tests for the Bernoulli sampling baseline."""

import numpy as np
import pytest

from repro.errors import SamplingError
from repro.sampling.bernoulli import BernoulliSampler


class TestBasics:
    def test_keeps_expected_fraction(self):
        s = BernoulliSampler(0.05, rng=0)
        s.offer_batch(np.arange(100_000))
        assert s.size == pytest.approx(5000, rel=0.1)

    def test_size_grows_without_bound(self):
        """The property that disqualifies Bernoulli for impressions."""
        s = BernoulliSampler(0.1, rng=1)
        sizes = []
        for day in range(5):
            s.offer_batch(np.arange(day * 10_000, (day + 1) * 10_000))
            sizes.append(s.size)
        assert sizes == sorted(sizes)
        assert sizes[-1] > 3 * sizes[0]

    def test_exact_inclusion_probabilities(self):
        s = BernoulliSampler(0.25, rng=2)
        s.offer_batch(np.arange(1000))
        np.testing.assert_allclose(s.inclusion_probabilities(), 0.25)

    def test_row_ids_subset_of_offers(self):
        s = BernoulliSampler(0.5, rng=3)
        s.offer_batch(np.arange(100))
        assert set(s.row_ids.tolist()) <= set(range(100))

    def test_empty_before_offers(self):
        s = BernoulliSampler(0.5)
        assert s.size == 0 and s.row_ids.shape == (0,)

    def test_rate_validation(self):
        with pytest.raises(SamplingError, match="rate"):
            BernoulliSampler(0.0)
        with pytest.raises(SamplingError, match="rate"):
            BernoulliSampler(1.5)

    def test_rate_one_keeps_everything(self):
        s = BernoulliSampler(1.0, rng=4)
        s.offer_batch(np.arange(50))
        assert s.size == 50
