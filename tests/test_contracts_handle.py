"""Tests for the contract-first progressive execution API.

Covers the new surface end to end: ``Contract`` constructors and the
``&`` combinator, ``engine.submit`` handles (iteration, ``result()``,
``cancel()``, callbacks), the exact-contract fast path (including
tables with no hierarchy), the deprecation shims that map the old
four-kwarg sprawl onto contracts, and — as a hypothesis property —
that the streamed ``ProgressUpdate`` sequence is exactly what
``BoundedResult.attempts`` records.
"""

from __future__ import annotations

import threading

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import Contract, QualityContract, SciBorqServer
from repro.columnstore import AggregateSpec, Query
from repro.columnstore.expressions import RadialPredicate
from repro.core.bounded import BoundedResult
from repro.core.engine import SciBorq
from repro.errors import (
    BudgetExceededError,
    QualityBoundError,
    QueryError,
    SessionError,
)
from repro.skyserver.generator import SkyGenerator, build_skyserver
from repro.skyserver.schema import DEC_RANGE, RA_RANGE, create_skyserver_catalog


def cone_count(ra=150.0, dec=10.0, radius=5.0) -> Query:
    return Query(
        table="PhotoObjAll",
        predicate=RadialPredicate("ra", "dec", ra, dec, radius),
        aggregates=[AggregateSpec("count")],
    )


# ======================================================================
# Contract constructors and combinator
# ======================================================================
class TestContractConstruction:
    def test_within_error(self):
        c = Contract.within_error(0.05)
        assert c.max_relative_error == 0.05
        assert c.time_budget is None
        assert not c.is_exact

    def test_within_budget(self):
        c = Contract.within_budget(10_000)
        assert c.time_budget == 10_000
        assert c.max_relative_error is None

    def test_exact(self):
        c = Contract.exact()
        assert c.is_exact
        assert c.max_relative_error == 0.0

    def test_unconstrained(self):
        c = Contract.unconstrained()
        assert c == Contract()
        assert c.max_relative_error is None and c.time_budget is None

    def test_negative_error_bound_rejected(self):
        with pytest.raises(QueryError, match="non-negative"):
            Contract.within_error(-0.1)

    def test_negative_budget_rejected(self):
        with pytest.raises(QueryError, match="non-negative"):
            Contract.within_budget(-1)

    def test_confidence_range_enforced(self):
        with pytest.raises(QueryError, match="confidence"):
            Contract.within_error(0.05, confidence=1.0)
        with pytest.raises(QueryError, match="confidence"):
            Contract.within_error(0.05, confidence=0.0)
        with pytest.raises(QueryError, match="confidence"):
            Contract().with_confidence(1.5)

    def test_modifiers_return_new_values(self):
        base = Contract.within_error(0.05)
        strict = base.strictly()
        assert strict.strict and not base.strict
        named = base.on_hierarchy("biased")
        assert named.hierarchy == "biased" and base.hierarchy is None
        conf = base.with_confidence(0.99)
        assert conf.confidence == 0.99 and base.confidence == 0.95

    def test_quality_contract_is_the_same_class(self):
        # the pre-redesign name must keep working, field for field
        assert QualityContract is Contract
        old_style = QualityContract(
            max_relative_error=0.1, time_budget=5_000, confidence=0.9, strict=True
        )
        assert old_style.max_relative_error == 0.1
        assert old_style.time_budget == 5_000
        assert old_style.confidence == 0.9
        assert old_style.strict


class TestContractCombinator:
    def test_hybrid_bound(self):
        c = Contract.within_error(0.05) & Contract.within_budget(10_000)
        assert c.max_relative_error == 0.05
        assert c.time_budget == 10_000

    def test_double_error_bound_rejected(self):
        with pytest.raises(QueryError, match="quality bound"):
            Contract.within_error(0.05) & Contract.within_error(0.1)

    def test_double_budget_rejected(self):
        with pytest.raises(QueryError, match="time budget"):
            Contract.within_budget(1_000) & Contract.within_budget(2_000)

    def test_exact_conflicts_with_error_bound(self):
        with pytest.raises(QueryError, match="quality bound"):
            Contract.exact() & Contract.within_error(0.05)

    def test_exact_combines_with_budget(self):
        c = Contract.exact() & Contract.within_budget(10_000)
        assert c.is_exact and c.time_budget == 10_000

    def test_conflicting_confidences_rejected(self):
        with pytest.raises(QueryError, match="confidence"):
            (
                Contract.within_error(0.05, confidence=0.9)
                & Contract.within_budget(1_000).with_confidence(0.99)
            )

    def test_one_sided_confidence_wins(self):
        c = Contract.within_error(0.05, confidence=0.9) & Contract.within_budget(1)
        assert c.confidence == 0.9

    def test_strict_is_sticky(self):
        c = Contract.within_error(0.05).strictly() & Contract.within_budget(1)
        assert c.strict

    def test_conflicting_hierarchies_rejected(self):
        with pytest.raises(QueryError, match="hierarch"):
            (
                Contract.within_error(0.05).on_hierarchy("a")
                & Contract.within_budget(1).on_hierarchy("b")
            )


# ======================================================================
# handles on the engine (lazy mode)
# ======================================================================
class TestQueryHandle:
    def test_updates_match_attempts_exactly(self, sky_engine):
        handle = sky_engine.submit(cone_count(), Contract.within_error(0.02))
        updates = list(handle)
        outcome = handle.result()
        assert len(updates) == len(outcome.attempts)
        for i, update in enumerate(updates):
            assert update.rung == i
            assert update.attempt is outcome.attempts[i]
            assert update.achieved_error == outcome.attempts[i].relative_error
            assert update.source == outcome.attempts[i].source

    def test_streamed_final_equals_blocking_execute(self, sky_engine):
        contract = Contract.within_error(0.05)
        streamed = sky_engine.submit(cone_count(), contract).result()
        blocking = sky_engine.execute(cone_count(), contract)
        assert isinstance(streamed, BoundedResult)
        assert streamed.total_cost == blocking.total_cost
        assert len(streamed.attempts) == len(blocking.attempts)
        for name, estimate in streamed.result.estimates.items():
            assert estimate.value == blocking.result.estimates[name].value
            assert estimate.se == blocking.result.estimates[name].se

    def test_result_is_idempotent_and_iteration_replays(self, sky_engine):
        handle = sky_engine.submit(cone_count(), Contract.within_error(0.1))
        first = handle.result()
        assert handle.result() is first
        # iterating after completion replays the recorded ladder
        replayed = list(handle)
        assert [u.rung for u in replayed] == list(range(len(first.attempts)))

    def test_updates_stream_estimates_with_intervals(self, sky_engine):
        handle = sky_engine.submit(cone_count(), Contract.within_error(0.05))
        for update in handle:
            if update.result is None:
                continue
            estimate = update.result.estimates["count(*)"]
            low, high = estimate.ci
            assert low <= estimate.value <= high

    def test_lazy_handle_charges_nothing_until_advanced(self, sky_engine):
        before = sky_engine.clock.now
        handle = sky_engine.submit(cone_count(), Contract.within_error(0.0))
        assert sky_engine.clock.now == before  # submission is free
        next(iter(handle))
        assert sky_engine.clock.now > before

    def test_cancel_after_first_update_keeps_rung_one_answer(self, sky_engine):
        handle = sky_engine.submit(cone_count(), Contract.within_error(0.0))
        first = next(iter(handle))
        spent_at_cancel = sky_engine.clock.now
        outcome = handle.cancel()
        # no further rung was scanned: the engine clock did not move
        assert sky_engine.clock.now == spent_at_cancel
        assert len(outcome.attempts) == 1
        assert outcome.total_cost == first.spent
        assert not outcome.met_quality  # bound 0.0 was not met yet
        assert outcome.result is first.result
        assert handle.cancelled and handle.done

    def test_cancel_after_bound_met_keeps_met_quality(self, sky_engine):
        handle = sky_engine.submit(cone_count(), Contract.within_error(0.5))
        list(handle)  # loose bound: first rung satisfies
        outcome = handle.cancel()  # cancel after completion: no-op
        assert outcome.met_quality
        assert outcome is handle.result()

    def test_cancel_before_any_update_still_answers(self, sky_engine):
        handle = sky_engine.submit(cone_count(), Contract.within_error(0.0))
        outcome = handle.cancel()  # owes the first rung's answer
        assert len(outcome.attempts) == 1
        assert outcome.result is not None

    def test_on_progress_replays_and_follows(self, sky_engine):
        handle = sky_engine.submit(cone_count(), Contract.within_error(0.05))
        seen: list[int] = []
        it = iter(handle)
        next(it)  # one rung before registration
        handle.on_progress(lambda u: seen.append(u.rung))
        assert seen == [0]  # history replayed
        handle.result()
        assert seen == list(range(len(handle.result().attempts)))

    def test_strict_miss_raises_from_result(self, sky_engine):
        handle = sky_engine.submit(
            cone_count(),
            (Contract.within_error(0.0001) & Contract.within_budget(2_000)).strictly(),
        )
        with pytest.raises(QualityBoundError):
            handle.result()

    def test_wrong_positional_contract_rejected(self, sky_engine):
        with pytest.raises(QueryError, match="expected a Contract"):
            sky_engine.execute(cone_count(), 0.05)


# ======================================================================
# exact contracts (incl. tables with no hierarchy)
# ======================================================================
class TestExactContract:
    def test_exact_contract_matches_execute_exact(self, sky_engine):
        outcome = sky_engine.execute(cone_count(), Contract.exact())
        raw = sky_engine.execute_exact(cone_count())
        assert outcome.result.exact
        assert outcome.met_quality and outcome.achieved_error == 0.0
        assert len(outcome.attempts) == 1
        assert outcome.result.estimates["count(*)"].value == raw.scalar("count(*)")

    def test_exact_contract_works_without_hierarchy(self, sky_engine):
        # the Field table has no impression hierarchy at all
        query = Query(table="Field", aggregates=[AggregateSpec("count")])
        outcome = sky_engine.execute(query, Contract.exact())
        assert outcome.result.exact
        assert outcome.result.estimates["count(*)"].value == (
            sky_engine.catalog.table("Field").num_rows
        )
        handle = sky_engine.submit(query, Contract.exact())
        assert handle.result().result.estimates["count(*)"].value == (
            outcome.result.estimates["count(*)"].value
        )

    def test_non_exact_contract_without_hierarchy_still_rejected(self, sky_engine):
        query = Query(table="Field", aggregates=[AggregateSpec("count")])
        with pytest.raises(QueryError, match="no hierarchy"):
            sky_engine.execute(query, Contract.within_error(0.1))

    def test_exact_skips_impression_rungs(self, sky_engine):
        outcome = sky_engine.execute(cone_count(), Contract.exact())
        base_rows = sky_engine.catalog.table("PhotoObjAll").num_rows
        assert [a.rows for a in outcome.attempts] == [base_rows]

    def test_exact_strict_budget_raises_when_overrun(self, sky_engine):
        contract = (Contract.exact() & Contract.within_budget(10)).strictly()
        with pytest.raises(BudgetExceededError):
            sky_engine.execute(cone_count(), contract)

    def test_exact_row_query_returns_rows(self, sky_engine):
        query = Query(table="PhotoObjAll", select=("objID", "ra"), limit=10)
        outcome = sky_engine.execute(query, Contract.exact())
        assert outcome.result.rows is not None
        assert outcome.result.rows.num_rows == 10


# ======================================================================
# deprecation shims
# ======================================================================
class TestDeprecationShims:
    def test_engine_legacy_kwargs_warn_and_match_contract(self, sky_engine):
        with pytest.warns(DeprecationWarning, match="deprecated"):
            legacy = sky_engine.execute(cone_count(), max_relative_error=0.05)
        modern = sky_engine.execute(cone_count(), Contract.within_error(0.05))
        assert legacy.total_cost == modern.total_cost
        assert (
            legacy.result.estimates["count(*)"].value
            == modern.result.estimates["count(*)"].value
        )

    def test_engine_rejects_contract_plus_legacy(self, sky_engine):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(QueryError, match="not both"):
                sky_engine.execute(
                    cone_count(),
                    Contract.within_error(0.05),
                    time_budget=1_000,
                )

    def test_legacy_strict_and_confidence_map_through(self, sky_engine):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(QualityBoundError):
                sky_engine.execute(
                    cone_count(),
                    max_relative_error=0.0001,
                    time_budget=2_000,
                    strict=True,
                )

    def test_session_legacy_kwargs_warn(self, fresh_sky_engine):
        with SciBorqServer(fresh_sky_engine, max_workers=1) as server:
            with pytest.warns(DeprecationWarning, match="deprecated"):
                session = server.open_session("old", max_relative_error=0.1)
            assert session.defaults == Contract.within_error(0.1)

    def test_session_rejects_contract_plus_legacy(self, fresh_sky_engine):
        with SciBorqServer(fresh_sky_engine, max_workers=1) as server:
            with pytest.warns(DeprecationWarning):
                with pytest.raises(SessionError, match="not both"):
                    server.open_session(
                        "both",
                        contract=Contract.within_error(0.1),
                        time_budget=1_000,
                    )

    def test_session_execute_rejects_contract_plus_overrides(
        self, fresh_sky_engine
    ):
        """Mixing contract= with per-field overrides must raise (as the
        engine does), not silently drop the override."""
        with SciBorqServer(fresh_sky_engine, max_workers=1) as server:
            session = server.open_session("mixer")
            with pytest.raises(SessionError, match="not both"):
                session.execute(
                    cone_count(),
                    contract=Contract.within_error(0.05),
                    strict=True,
                )
            with pytest.raises(SessionError, match="not both"):
                session.execute_many(
                    [cone_count()],
                    contract=Contract.within_error(0.05),
                    time_budget=1_000,
                )

    def test_exact_contract_rejects_nonzero_error_bound(self):
        with pytest.raises(QueryError, match="exact contract"):
            Contract(max_relative_error=0.1, is_exact=True)

    def test_exact_default_session_error_override_runs_the_ladder(
        self, fresh_sky_engine
    ):
        """Overriding the error bound on an exact-default session must
        drop the exact routing, not silently full-scan."""
        with SciBorqServer(fresh_sky_engine, max_workers=1) as server:
            session = server.open_session("exact", contract=Contract.exact())
            override = session.contract(max_relative_error=0.5)
            assert not override.is_exact
            assert override.max_relative_error == 0.5
            outcome = session.execute(cone_count(), max_relative_error=0.5)
            base_rows = fresh_sky_engine.catalog.table("PhotoObjAll").num_rows
            assert outcome.attempts[0].rows < base_rows  # ladder, not scan
            # without an override the exact default still routes exact
            exact = session.execute(cone_count())
            assert exact.result.exact
            assert exact.attempts[0].rows == base_rows
            # a budget override keeps exact routing (exact & budget is legal)
            budgeted = session.contract(time_budget=10.0)
            assert budgeted.is_exact and budgeted.time_budget == 10.0

    def test_session_contract_first_defaults(self, fresh_sky_engine):
        with SciBorqServer(fresh_sky_engine, max_workers=1) as server:
            session = server.open_session(
                "new", contract=Contract.within_error(0.1) & Contract.within_budget(50_000)
            )
            assert session.defaults.max_relative_error == 0.1
            assert session.defaults.time_budget == 50_000
            # per-query INHERIT overrides still work on top
            override = session.contract(max_relative_error=0.9)
            assert override.max_relative_error == 0.9
            assert override.time_budget == 50_000


# ======================================================================
# server-driven handles
# ======================================================================
class TestServerSubmit:
    def test_driven_handle_streams_and_matches_execute(self, fresh_sky_engine):
        with SciBorqServer(fresh_sky_engine, max_workers=2) as server:
            session = server.open_session(
                "alice", contract=Contract.within_error(0.05)
            )
            worker_names: list[str] = []
            handle = session.submit(cone_count()).on_progress(
                lambda u: worker_names.append(threading.current_thread().name)
            )
            outcome = handle.result(timeout=60)
            assert outcome.met_quality
            assert len(handle.updates) == len(outcome.attempts)
            # callbacks were delivered off the server's worker threads
            assert worker_names and all(
                name.startswith("sciborq") for name in worker_names
            )
            # the session recorded the progressive outcome like any other
            assert session.history[-1] is outcome
            assert len(session.query_log) == 1
            assert server.queries_served == 1

    def test_driven_iteration_follows_worker(self, fresh_sky_engine):
        with SciBorqServer(fresh_sky_engine, max_workers=2) as server:
            session = server.open_session("bob")
            handle = session.submit(cone_count(), Contract.within_error(0.1))
            errors = [u.achieved_error for u in handle]
            outcome = handle.result(timeout=60)
            assert errors == [a.relative_error for a in outcome.attempts]

    def test_submit_many_interleaves_sessions(self, fresh_sky_engine):
        with SciBorqServer(fresh_sky_engine, max_workers=4) as server:
            alice = server.open_session("alice", contract=Contract.within_error(0.2))
            bob = server.open_session("bob", contract=Contract.within_error(0.2))
            handles = server.submit_many(
                [(alice, cone_count(150.0)), (bob, cone_count(170.0, radius=4.0))]
            )
            outcomes = [handle.result(timeout=60) for handle in handles]
            assert all(outcome.met_quality for outcome in outcomes)
            # each session's clock saw exactly its own query's spending
            assert alice.clock.now == outcomes[0].total_cost
            assert bob.clock.now == outcomes[1].total_cost

    def test_driven_cancel_keeps_best_so_far(self, fresh_sky_engine):
        with SciBorqServer(fresh_sky_engine, max_workers=2) as server:
            session = server.open_session("carol")
            handle = session.submit(cone_count(), Contract.within_error(0.0))
            outcome = handle.cancel()  # worker stops between rungs
            assert outcome.result is not None
            assert 1 <= len(outcome.attempts) <= 3
            assert handle.cancelled and handle.done

    def test_strict_miss_stays_on_the_handle(self, fresh_sky_engine):
        with SciBorqServer(fresh_sky_engine, max_workers=1) as server:
            session = server.open_session(
                "strict",
                contract=(
                    Contract.within_error(1e-12) & Contract.within_budget(600)
                ).strictly(),
            )
            handle = session.submit(cone_count())
            with pytest.raises(QualityBoundError):
                handle.result(timeout=60)
            # the pool survives: the next query runs normally
            ok = session.submit(cone_count(), Contract.within_error(0.9))
            assert ok.result(timeout=60).met_quality

    def test_closed_session_rejects_submit(self, fresh_sky_engine):
        with SciBorqServer(fresh_sky_engine, max_workers=1) as server:
            session = server.open_session()
            session.close()
            with pytest.raises(SessionError, match="closed"):
                session.submit(cone_count())

    def test_cancel_from_progress_callback_does_not_deadlock(
        self, fresh_sky_engine
    ):
        """A callback cancelling the handle it observes must settle on
        the worker thread instead of blocking it forever."""
        with SciBorqServer(fresh_sky_engine, max_workers=1) as server:
            session = server.open_session("ui")
            handle = session.submit(cone_count(), Contract.within_error(0.0))
            handle.on_progress(lambda update: handle.cancel())
            outcome = handle.result(timeout=30)
            assert handle.cancelled and handle.done
            assert outcome.result is not None
            # the worker (and its read lock) is free again
            ok = session.submit(cone_count(), Contract.within_error(0.9))
            assert ok.result(timeout=30).met_quality

    def test_broken_callback_fails_the_handle_loudly(self, fresh_sky_engine):
        """A raising observer must surface from result(), not leave a
        driven handle unsettled (or a lazy one asserting)."""

        def boom(update):
            raise RuntimeError("observer broke")

        with SciBorqServer(fresh_sky_engine, max_workers=1) as server:
            session = server.open_session("broken")
            handle = session.submit(cone_count())
            with pytest.raises(RuntimeError, match="observer broke"):
                # the raise surfaces either at registration (the worker
                # already published and the replay hits it) or from
                # result(); the handle settles with the error either way
                handle.on_progress(boom)
                handle.result(timeout=30)
            # the pool survives the broken observer
            ok = session.submit(cone_count(), Contract.within_error(0.9))
            assert ok.result(timeout=30).met_quality
        # lazy mode: same error, same loudness
        lazy = fresh_sky_engine.submit(cone_count()).on_progress(boom)
        with pytest.raises(RuntimeError, match="observer broke"):
            lazy.result()


# ======================================================================
# hypothesis: the stream is the ladder
# ======================================================================
_PROPERTY_ENGINE: SciBorq | None = None


def _property_engine() -> SciBorq:
    global _PROPERTY_ENGINE
    if _PROPERTY_ENGINE is None:
        engine = SciBorq(
            create_skyserver_catalog(),
            interest_attributes={"ra": RA_RANGE, "dec": DEC_RANGE},
            rng=601,
        )
        engine.create_hierarchy(
            "PhotoObjAll", policy="uniform", layer_sizes=(4_000, 400)
        )
        build_skyserver(
            20_000, generator=SkyGenerator(rng=602), loader=engine.loader
        )
        _PROPERTY_ENGINE = engine
    return _PROPERTY_ENGINE


class TestStreamedLadderProperty:
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        ra=st.floats(min_value=130.0, max_value=230.0),
        radius=st.floats(min_value=1.0, max_value=10.0),
        target=st.sampled_from([None, 0.5, 0.1, 0.05, 0.01, 0.0]),
        budget=st.sampled_from([None, 500.0, 5_000.0, 50_000.0]),
    )
    def test_streamed_errors_are_the_recorded_attempts(
        self, ra, radius, target, budget
    ):
        """What the handle streams is what the outcome records."""
        engine = _property_engine()
        contract = Contract(max_relative_error=target, time_budget=budget)
        handle = engine.submit(cone_count(ra, 10.0, radius), contract)
        updates = list(handle)
        outcome = handle.result()
        assert [u.achieved_error for u in updates] == [
            a.relative_error for a in outcome.attempts
        ]
        assert [u.attempt for u in updates] == outcome.attempts
        # spend is monotone along the ladder and ends at total_cost
        spends = [u.spent for u in updates]
        assert spends == sorted(spends)
        assert spends[-1] == outcome.total_cost
