"""Tests for the Table relation primitive."""

import numpy as np
import pytest

from repro.columnstore.column import Column
from repro.columnstore.table import Table
from repro.errors import LoadError, SchemaError, UnknownColumnError


@pytest.fixture
def table() -> Table:
    return Table.from_arrays(
        "t", {"a": np.arange(4), "b": np.array([1.0, 2.0, 3.0, 4.0])}
    )


class TestConstruction:
    def test_from_dtype_mapping(self):
        t = Table("t", {"a": "int64", "b": "float64"})
        assert t.num_rows == 0
        assert t.column_names == ["a", "b"]

    def test_from_columns(self):
        t = Table("t", [Column("a", "int64", [1, 2])])
        assert t.num_rows == 2

    def test_rejects_ragged_columns(self):
        with pytest.raises(SchemaError, match="ragged"):
            Table("t", [Column("a", "int64", [1]), Column("b", "int64", [1, 2])])

    def test_rejects_duplicate_columns(self):
        with pytest.raises(SchemaError, match="duplicate"):
            Table("t", [Column("a", "int64"), Column("a", "int64")])

    def test_rejects_empty_name(self):
        with pytest.raises(SchemaError, match="non-empty"):
            Table("", {"a": "int64"})


class TestAccess:
    def test_getitem_returns_values(self, table):
        np.testing.assert_array_equal(table["a"], np.arange(4))

    def test_unknown_column(self, table):
        with pytest.raises(UnknownColumnError, match="nope"):
            table.column("nope")

    def test_row_as_dict(self, table):
        assert table.row(1) == {"a": 1, "b": 2.0}

    def test_row_out_of_range(self, table):
        with pytest.raises(IndexError, match="out of range"):
            table.row(10)

    def test_iter_rows(self, table):
        rows = list(table.iter_rows())
        assert len(rows) == 4 and rows[0]["a"] == 0

    def test_nbytes_positive(self, table):
        assert table.nbytes() == 4 * 8 * 2


class TestAppend:
    def test_append_batch_bumps_version(self, table):
        v0 = table.version
        count = table.append_batch({"a": [4, 5], "b": [5.0, 6.0]})
        assert count == 2
        assert table.num_rows == 6
        assert table.version == v0 + 1

    def test_append_row(self, table):
        table.append_row({"a": 9, "b": 9.5})
        assert table.row(4) == {"a": 9, "b": 9.5}

    def test_missing_column_rejected_atomically(self, table):
        with pytest.raises(LoadError, match="missing"):
            table.append_batch({"a": [1]})
        assert table.num_rows == 4  # nothing partially appended

    def test_extra_column_rejected(self, table):
        with pytest.raises(LoadError, match="unexpected"):
            table.append_batch({"a": [1], "b": [1.0], "c": [2]})

    def test_ragged_batch_rejected(self, table):
        with pytest.raises(LoadError, match="ragged"):
            table.append_batch({"a": [1, 2], "b": [1.0]})


class TestDerivation:
    def test_take_materialises(self, table):
        sub = table.take(np.array([3, 0]))
        np.testing.assert_array_equal(sub["a"], [3, 0])
        table.append_batch({"a": [10], "b": [1.0]})
        assert sub.num_rows == 2  # unaffected by later appends

    def test_filter(self, table):
        sub = table.filter(table["a"] >= 2)
        assert sub.num_rows == 2

    def test_project_subset_and_order(self, table):
        sub = table.project(["b", "a"])
        assert sub.column_names == ["b", "a"]

    def test_project_unknown_column(self, table):
        with pytest.raises(UnknownColumnError):
            table.project(["zzz"])

    def test_empty_like(self, table):
        empty = table.empty_like()
        assert empty.num_rows == 0
        assert empty.column_names == table.column_names
