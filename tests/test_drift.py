"""Tests for workload-drift detection."""

import numpy as np
import pytest

from repro.workload.drift import DriftDetector


class TestDistance:
    def test_no_drift_on_stationary_workload(self, rng):
        detector = DriftDetector((0, 100), bins=20, window=100, threshold=0.35)
        for _ in range(10):
            detector.observe(rng.normal(50, 5, 50))
        assert detector.distance() < 0.2
        assert not detector.drifted

    def test_detects_focal_shift(self, rng):
        detector = DriftDetector((0, 100), bins=20, window=100, threshold=0.35)
        for _ in range(10):
            detector.observe(rng.normal(20, 3, 50))
        for _ in range(4):
            detector.observe(rng.normal(80, 3, 50))
        assert detector.drifted

    def test_quiet_before_window_half_full(self, rng):
        detector = DriftDetector((0, 100), window=200)
        detector.observe(rng.normal(20, 3, 10))
        assert detector.distance() == 0.0

    def test_empty_observation_ignored(self):
        detector = DriftDetector((0, 100))
        detector.observe(np.array([]))
        assert detector.observations == 0


class TestResetReference:
    def test_reset_stops_refiring(self, rng):
        detector = DriftDetector((0, 100), bins=20, window=100, threshold=0.3)
        for _ in range(10):
            detector.observe(rng.normal(20, 3, 50))
        for _ in range(4):
            detector.observe(rng.normal(80, 3, 50))
        assert detector.drifted
        detector.reset_reference()
        # recent window matches new reference: calm again
        assert not detector.drifted
        # workload continuing at the new focus stays calm
        for _ in range(4):
            detector.observe(rng.normal(80, 3, 50))
        assert not detector.drifted


class TestValidation:
    def test_empty_domain(self):
        with pytest.raises(ValueError, match="empty domain"):
            DriftDetector((5, 5))

    def test_threshold_range(self):
        with pytest.raises(ValueError, match="threshold"):
            DriftDetector((0, 1), threshold=1.5)

    def test_window_positive(self):
        with pytest.raises(ValueError, match="window"):
            DriftDetector((0, 1), window=0)
