"""Process-sharded scatter-gather execution (:mod:`repro.core.shards`).

Pins the subsystem's contract from the primitives up: block-aligned
shard planning, shared-memory export/attach round-trips, byte-identical
scatter-gather (indices, stats, charges) against the solo scan for
registered and ephemeral tables, the gather-point merge edge cases
(empty shard, single-block degenerate, groups on one shard only,
NaN-only shard), predicate pickling across the task protocol, crash
degradation (a dead worker falls back, never errors), and full
server-level identity with clean shutdown (no stray processes, threads,
or shared-memory segments).
"""

from __future__ import annotations

import multiprocessing
import pickle
import threading
import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.columnstore import operators
from repro.columnstore.catalog import Catalog
from repro.columnstore.column import Column
from repro.columnstore.expressions import (
    And,
    Between,
    Comparison,
    InSet,
    Not,
    Or,
    RadialPredicate,
    TruePredicate,
)
from repro.columnstore.executor import Executor
from repro.columnstore.query import AggregateSpec, Query
from repro.columnstore.table import Table
from repro.core.contracts import Contract
from repro.core.engine import SciBorq
from repro.core.server import SciBorqServer
from repro.core.shards import (
    SHARDS_ENV,
    ShardPlanner,
    ShardPool,
    TableExport,
    attach_table,
    detect_shard_count,
    merge_partials,
    shard_ranges,
)
from repro.util.concurrency import MorselPool

BS = 256  # small storage blocks so a few thousand rows shard many ways
N = 4096


def make_table(n: int = N, seed: int = 7, name: str = "T") -> Table:
    """A shardable table with prunable, NaN-only, and grouped regions.

    * ``x`` is block-sorted 0..100, so range predicates prune blocks;
    * ``y`` is uniform noise (never prunable);
    * ``v`` is NaN throughout the second half of the rows — those
      blocks carry empty zones, the NaN-only-shard edge case;
    * ``g`` is a group key whose value 99 exists only in block 0.
    """
    rng = np.random.default_rng(seed)
    x = np.sort(rng.uniform(0.0, 100.0, n))
    y = rng.uniform(0.0, 100.0, n)
    v = rng.uniform(-5.0, 5.0, n)
    v[n // 2 :] = np.nan
    g = rng.integers(0, 4, n)
    g[: BS // 2] = 99
    return Table(
        name,
        [
            Column("x", "float64", x, block_size=BS),
            Column("y", "float64", y, block_size=BS),
            Column("v", "float64", v, block_size=BS),
            Column("g", "int64", g, block_size=BS),
        ],
    )


def assert_same_scan(result, solo_indices, solo_op):
    """The scatter's gather must be byte-identical to the solo scan."""
    assert result is not None
    indices, op = result
    np.testing.assert_array_equal(indices, solo_indices)
    assert indices.dtype == np.int64
    assert (op.tuples_in, op.tuples_out) == (
        solo_op.tuples_in,
        solo_op.tuples_out,
    )
    assert (op.blocks_scanned, op.blocks_pruned) == (
        solo_op.blocks_scanned,
        solo_op.blocks_pruned,
    )
    assert op.operator == solo_op.operator


# ----------------------------------------------------------------------
# planning
# ----------------------------------------------------------------------
class TestShardRanges:
    @pytest.mark.parametrize(
        "num_rows,n_shards", [(1, 1), (255, 2), (4096, 3), (4097, 4), (10, 7)]
    )
    def test_partition_properties(self, num_rows, n_shards):
        ranges = shard_ranges(num_rows, BS, n_shards)
        # covers every row exactly once, in order
        assert ranges[0][0] == 0
        assert ranges[-1][1] == num_rows
        for (_, stop), (start, _) in zip(ranges, ranges[1:]):
            assert stop == start
        # block-aligned starts, balanced in whole blocks
        blocks = []
        for start, stop in ranges:
            assert start % BS == 0
            assert stop > start
            blocks.append(-(-(stop - start) // BS))
        assert max(blocks) - min(blocks) <= 1
        assert len(ranges) == min(n_shards, -(-num_rows // BS))

    def test_degenerates(self):
        assert shard_ranges(0, BS, 4) == []
        assert shard_ranges(-3, BS, 4) == []
        assert shard_ranges(100, BS, 0) == []
        with pytest.raises(ValueError):
            shard_ranges(100, 0, 2)

    def test_planner(self):
        table = make_table()
        assert ShardPlanner(3).plan(table) == shard_ranges(N, BS, 3)
        with pytest.raises(ValueError):
            ShardPlanner(0)
        # mismatched block grids cannot shard
        ragged = Table(
            "R",
            [
                Column("a", "float64", np.zeros(10), block_size=4),
                Column("b", "float64", np.zeros(10), block_size=8),
            ],
        )
        assert ShardPlanner(2).plan(ragged) == []


class TestDetectShardCount:
    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(SHARDS_ENV, "5")
        assert detect_shard_count() == (5, f"env:{SHARDS_ENV}")

    @pytest.mark.parametrize("raw", ["zero", "-2", "0", ""])
    def test_bad_env_falls_through(self, monkeypatch, raw):
        monkeypatch.setenv(SHARDS_ENV, raw)
        count, source = detect_shard_count()
        assert count >= 1
        assert not source.startswith("env:")

    def test_autodetect_positive(self, monkeypatch):
        monkeypatch.delenv(SHARDS_ENV, raising=False)
        count, source = detect_shard_count()
        assert count >= 1
        assert source in (
            "process_cpu_count",
            "sched_getaffinity",
            "cpu_count",
        )


# ----------------------------------------------------------------------
# export / attach round-trip (in-process: attach_table is plain numpy)
# ----------------------------------------------------------------------
class TestExportAttach:
    def test_round_trip(self):
        table = make_table()
        export = TableExport(table)
        try:
            keep = []
            attached = attach_table(export.manifest, keep)
            try:
                assert attached.num_rows == table.num_rows
                assert attached.block_size == table.block_size
                for name in table.column_names:
                    np.testing.assert_array_equal(attached[name], table[name])
            finally:
                for segment in keep:
                    segment.close()
        finally:
            export.close()
        export.close()  # idempotent

    def test_sliced_attach_matches_scan(self):
        """Slice zones drive the same pruning as full-table zones."""
        table = make_table()
        predicate = Between("x", 20.0, 40.0)
        solo_indices, solo_op = operators.select(table, predicate, pool=None)
        export = TableExport(table)
        try:
            fragments, tin, scanned, pruned = [], 0, 0, 0
            for start, stop in shard_ranges(N, BS, 3):
                keep = []
                shard = attach_table(export.manifest, keep, start, stop)
                try:
                    indices, op = operators.select(shard, predicate, pool=None)
                    fragments.append(indices + start)
                    tin += op.tuples_in
                    scanned += op.blocks_scanned
                    pruned += op.blocks_pruned
                finally:
                    for segment in keep:
                        segment.close()
            np.testing.assert_array_equal(
                np.concatenate(fragments), solo_indices
            )
            assert tin == solo_op.tuples_in
            assert scanned == solo_op.blocks_scanned
            assert pruned == solo_op.blocks_pruned
        finally:
            export.close()

    def test_column_subset_and_missing(self):
        table = make_table()
        export = TableExport(table, columns=["x"])
        try:
            assert [s.name for s in export.manifest.columns] == ["x"]
        finally:
            export.close()
        with pytest.raises(KeyError):
            TableExport(table, columns=["x", "nope"])


# ----------------------------------------------------------------------
# row_range scans (the operators primitive shards are built on)
# ----------------------------------------------------------------------
class TestRowRange:
    @pytest.mark.parametrize("n_parts", [1, 2, 3, 5])
    def test_partition_reproduces_solo(self, n_parts):
        table = make_table()
        predicate = And([Between("x", 10.0, 55.0), Comparison("y", "<", 70.0)])
        solo_indices, solo_op = operators.select(table, predicate, pool=None)
        fragments, tin, scanned, pruned = [], 0, 0, 0
        for start, stop in shard_ranges(N, BS, n_parts):
            indices, op = operators.select(
                table, predicate, pool=None, row_range=(start, stop)
            )
            fragments.append(indices)
            tin += op.tuples_in
            scanned += op.blocks_scanned
            pruned += op.blocks_pruned
        np.testing.assert_array_equal(np.concatenate(fragments), solo_indices)
        assert tin == solo_op.tuples_in
        assert (scanned, pruned) == (
            solo_op.blocks_scanned,
            solo_op.blocks_pruned,
        )

    def test_out_of_bounds_clamped(self):
        table = make_table()
        indices, op = operators.select(
            table, TruePredicate(), pool=None, row_range=(-5, N + 99)
        )
        assert indices.shape[0] == N
        indices, op = operators.select(
            table, TruePredicate(), pool=None, row_range=(N, N)
        )
        assert indices.shape[0] == 0
        assert op.tuples_in == 0


# ----------------------------------------------------------------------
# aggregate partials
# ----------------------------------------------------------------------
class TestMergePartials:
    def _partials(self, pool, table, predicate, specs, group_by=()):
        partials = pool.scatter_aggregate(table, predicate, specs, group_by)
        assert partials is not None
        return partials

    def test_exact_and_close_merges(self, shard_env):
        catalog, pool = shard_env
        table = catalog.table("T")
        predicate = Between("x", 5.0, 80.0)
        solo_indices, _ = operators.select(table, predicate, pool=None)
        y = table["y"][solo_indices]
        specs = (
            AggregateSpec("count"),
            AggregateSpec("min", "y"),
            AggregateSpec("max", "y"),
            AggregateSpec("avg", "y"),
            AggregateSpec("sum", "y"),
        )
        partials = self._partials(pool, table, predicate, specs)
        states, grouped, stats = merge_partials(partials)
        assert grouped is None
        assert sum(p.matched for p in partials) == solo_indices.shape[0]
        assert stats.tuples_in == operators.select(
            table, predicate, pool=None
        )[1].tuples_in
        # count/min/max are exactly mergeable
        state = states["min(y)"]
        assert state.count == y.shape[0]
        assert state.minimum == y.min()
        assert state.maximum == y.max()
        # moment merges are exact up to float associativity
        assert states["avg(y)"].mean == pytest.approx(y.mean(), rel=1e-12)
        assert states["sum(y)"].total == pytest.approx(y.sum(), rel=1e-12)

    def test_grouped_key_on_one_shard_only(self, shard_env):
        """Group 99 lives only in block 0: merge must not invent it."""
        catalog, pool = shard_env
        table = catalog.table("T")
        predicate = TruePredicate()
        specs = (AggregateSpec("avg", "y"),)
        partials = self._partials(
            pool, table, predicate, specs, group_by=("g",)
        )
        _states, grouped, _stats = merge_partials(partials)
        assert grouped is not None
        g, y = table["g"], table["y"]
        from repro.columnstore.aggstate import GroupedAggState

        solo = GroupedAggState.from_arrays(("g",), {"g": g}, {"y": y})
        assert grouped.keys_sorted() == solo.keys_sorted()
        rare = next(k for k in grouped.keys_sorted() if k[0] == 99)
        assert grouped.counts[rare] == solo.counts[rare] == BS // 2
        # only the first shard contributed that group
        holders = [
            p for p in partials if rare in (p.grouped.counts if p.grouped else {})
        ]
        assert len(holders) == 1


# ----------------------------------------------------------------------
# the pool: scatter identity and edge cases (shared 2-worker fixture)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def shard_env():
    catalog = Catalog()
    catalog.add_table(make_table())
    pool = ShardPool(catalog, n_shards=2, min_rows=0)
    yield catalog, pool
    pool.close()


PREDICATES = [
    TruePredicate(),
    Between("x", 20.0, 45.0),
    Comparison("y", ">=", 50.0),
    InSet("g", [0, 2, 99]),
    RadialPredicate("x", "y", 50.0, 50.0, 12.0),
    And([Between("x", 10.0, 90.0), Comparison("y", "<", 30.0)]),
    Or([Between("x", 0.0, 5.0), Between("x", 95.0, 100.0)]),
    Not(Between("x", 30.0, 70.0)),
    Comparison("v", ">", 0.0),  # NaN-only blocks in the second shard
    Between("x", 1000.0, 2000.0),  # matches nothing anywhere
]


class TestScatterScan:
    @pytest.mark.parametrize(
        "predicate", PREDICATES, ids=[p.fingerprint() for p in PREDICATES]
    )
    def test_byte_identical_to_solo(self, shard_env, predicate):
        catalog, pool = shard_env
        table = catalog.table("T")
        solo_indices, solo_op = operators.select(table, predicate, pool=None)
        assert_same_scan(
            pool.scatter_scan(table, predicate), solo_indices, solo_op
        )

    def test_empty_shard_all_blocks_pruned(self, shard_env):
        """x is block-sorted, so a low range prunes the whole 2nd shard."""
        catalog, pool = shard_env
        table = catalog.table("T")
        predicate = Between("x", 0.0, float(table["x"][N // 4]))
        solo_indices, solo_op = operators.select(table, predicate, pool=None)
        assert solo_op.blocks_pruned > N // BS // 2  # 2nd half fully pruned
        assert_same_scan(
            pool.scatter_scan(table, predicate), solo_indices, solo_op
        )

    def test_nan_only_shard(self, shard_env):
        """v's second half is all-NaN: empty zones prune every block."""
        catalog, pool = shard_env
        table = catalog.table("T")
        predicate = Comparison("v", "<=", 100.0)
        solo_indices, solo_op = operators.select(table, predicate, pool=None)
        assert solo_op.blocks_pruned >= N // BS // 2
        assert_same_scan(
            pool.scatter_scan(table, predicate), solo_indices, solo_op
        )

    def test_single_block_table_declines(self, shard_env):
        catalog, pool = shard_env
        tiny = Table(
            "tiny", [Column("x", "float64", np.arange(10.0), block_size=BS)]
        )
        catalog.add_table(tiny)
        try:
            assert pool.scatter_scan(tiny, TruePredicate()) is None
        finally:
            catalog.drop_table("tiny")

    def test_unregistered_lookalike_declines_cached_path(self, shard_env):
        """Same name, different rows: must not serve the cached export."""
        catalog, pool = shard_env
        impostor = make_table(seed=8)  # same name "T", different data
        predicate = Between("x", 20.0, 45.0)
        solo_indices, solo_op = operators.select(impostor, predicate, pool=None)
        # served (via a one-shot ephemeral export), but against the
        # impostor's own rows — never the registered table's
        assert_same_scan(
            pool.scatter_scan(impostor, predicate), solo_indices, solo_op
        )

    def test_ephemeral_requires_predicate_columns(self, shard_env):
        _catalog, pool = shard_env
        loose = make_table(name="unregistered")
        assert pool.scatter_scan(loose, TruePredicate()) is None

    def test_ephemeral_export_is_not_cached(self, shard_env):
        _catalog, pool = shard_env
        loose = make_table(name="ephem", seed=20)
        predicate = Comparison("y", "<", 50.0)
        before = pool.stats.ephemeral_exports
        first = pool.scatter_scan(loose, predicate)
        second = pool.scatter_scan(loose, predicate)
        assert pool.stats.ephemeral_exports == before + 2
        solo_indices, solo_op = operators.select(loose, predicate, pool=None)
        assert_same_scan(first, solo_indices, solo_op)
        assert_same_scan(second, solo_indices, solo_op)

    def test_version_change_re_exports(self):
        catalog = Catalog()
        table = make_table(n=2 * BS)
        catalog.add_table(table)
        with ShardPool(catalog, n_shards=2, min_rows=0) as pool:
            predicate = Comparison("y", "<", 40.0)
            first = pool.scatter_scan(table, predicate)
            assert first is not None
            exports_before = pool.stats.exports
            table.append_batch(
                {
                    "x": np.full(BS, 50.0),
                    "y": np.full(BS, 1.0),
                    "v": np.full(BS, 0.5),
                    "g": np.zeros(BS, dtype=np.int64),
                }
            )
            solo_indices, solo_op = operators.select(
                table, predicate, pool=None
            )
            assert_same_scan(
                pool.scatter_scan(table, predicate), solo_indices, solo_op
            )
            assert pool.stats.exports == exports_before + 1

    def test_invalidate_drops_export(self, shard_env):
        catalog, pool = shard_env
        table = catalog.table("T")
        pool.scatter_scan(table, Between("x", 0.0, 50.0))
        assert "T" in pool._exports
        pool.invalidate("T")
        assert "T" not in pool._exports
        # and the next scatter re-exports transparently
        predicate = Between("x", 20.0, 45.0)
        solo_indices, solo_op = operators.select(table, predicate, pool=None)
        assert_same_scan(
            pool.scatter_scan(table, predicate), solo_indices, solo_op
        )


class TestCrashDegradation:
    def test_dead_worker_degrades_never_errors(self):
        catalog = Catalog()
        catalog.add_table(make_table())
        pool = ShardPool(catalog, n_shards=2, min_rows=0, reply_timeout=30.0)
        try:
            table = catalog.table("T")
            predicate = Between("x", 10.0, 60.0)
            assert pool.scatter_scan(table, predicate) is not None
            pool._workers[0].process.terminate()
            deadline = time.monotonic() + 10.0
            while not pool.degraded and time.monotonic() < deadline:
                time.sleep(0.02)
            assert pool.degraded
            # degraded pool declines; the caller's solo path still works
            assert pool.scatter_scan(table, predicate) is None
            solo_indices, _ = operators.select(table, predicate, pool=None)
            assert solo_indices.shape[0] > 0
        finally:
            pool.close()

    def test_unpicklable_predicate_falls_back_without_degrading(self):
        catalog = Catalog()
        catalog.add_table(make_table())
        with ShardPool(catalog, n_shards=2, min_rows=0) as pool:
            table = catalog.table("T")

            class Hostile(Between):
                def __reduce__(self):
                    raise pickle.PicklingError("nope")

            assert pool.scatter_scan(table, Hostile("x", 0.0, 50.0)) is None
            assert not pool.degraded
            # the pool still serves picklable work afterwards
            predicate = Between("x", 20.0, 45.0)
            solo_indices, solo_op = operators.select(
                table, predicate, pool=None
            )
            assert_same_scan(
                pool.scatter_scan(table, predicate), solo_indices, solo_op
            )


# ----------------------------------------------------------------------
# pool interface parity + shutdown hygiene
# ----------------------------------------------------------------------
class TestPoolInterface:
    def test_morsel_pool_interface(self):
        pool = MorselPool(max_workers=2)
        assert pool.n_workers == 2
        assert pool.map(lambda v: v + 1, [1, 2, 3]) == [2, 3, 4]
        pool.close()
        pool.close()  # idempotent

    def test_shard_pool_interface(self):
        catalog = Catalog()
        pool = ShardPool(catalog, n_shards=3, min_rows=0)
        assert pool.n_workers == 3
        pool.close()
        pool.close()  # idempotent, and without ever spawning
        with pytest.raises(ValueError):
            ShardPool(catalog, n_shards=0)

    def test_env_resolved_count(self, monkeypatch):
        monkeypatch.setenv(SHARDS_ENV, "4")
        pool = ShardPool(Catalog())
        assert (pool.n_workers, pool.source) == (4, f"env:{SHARDS_ENV}")
        pool.close()

    def test_no_stray_processes_or_threads_after_close(self):
        # other fixtures may hold live pools; only *this* pool's
        # workers, receiver threads, and arenas must be gone
        before_procs = set(multiprocessing.active_children())
        before_threads = set(threading.enumerate())
        catalog = Catalog()
        catalog.add_table(make_table())
        pool = ShardPool(catalog, n_shards=2, min_rows=0)
        assert pool.scatter_scan(catalog.table("T"), Between("x", 0, 50))
        pool.close()
        assert set(multiprocessing.active_children()) <= before_procs
        assert set(threading.enumerate()) <= before_threads


# ----------------------------------------------------------------------
# sub-plan pickling (the task protocol's wire format)
# ----------------------------------------------------------------------
_pred_columns = st.sampled_from(["x", "y", "v", "g"])
_finite = st.floats(
    min_value=-200.0, max_value=200.0, allow_nan=False, allow_infinity=False
)
_leaves = st.one_of(
    st.just(TruePredicate()),
    st.builds(
        Comparison,
        _pred_columns,
        st.sampled_from(["==", "!=", "<", "<=", ">", ">="]),
        _finite,
    ),
    st.builds(
        lambda column, a, b: Between(column, min(a, b), max(a, b)),
        _pred_columns,
        _finite,
        _finite,
    ),
    st.builds(
        InSet, _pred_columns, st.lists(_finite, min_size=1, max_size=4)
    ),
    st.builds(
        lambda cx, cy, r: RadialPredicate("x", "y", cx, cy, r),
        _finite,
        _finite,
        st.floats(min_value=0.0, max_value=100.0),
    ),
)
_predicates = st.recursive(
    _leaves,
    lambda children: st.one_of(
        st.builds(And, st.lists(children, min_size=1, max_size=3)),
        st.builds(Or, st.lists(children, min_size=1, max_size=3)),
        st.builds(Not, children),
    ),
    max_leaves=6,
)


class TestSubPlanPickling:
    _table = make_table(n=512, seed=31)

    @given(predicate=_predicates)
    @settings(max_examples=80, deadline=None)
    def test_predicates_survive_pickle(self, predicate):
        clone = pickle.loads(pickle.dumps(predicate))
        assert clone.fingerprint() == predicate.fingerprint()
        assert clone.columns() == predicate.columns()
        np.testing.assert_array_equal(
            clone.evaluate(self._table), predicate.evaluate(self._table)
        )

    @given(predicate=_predicates)
    @settings(max_examples=25, deadline=None)
    def test_queries_survive_pickle(self, predicate):
        query = Query(
            "T",
            predicate=predicate,
            aggregates=(AggregateSpec("avg", "y"), AggregateSpec("count")),
            group_by=("g",),
        )
        clone = pickle.loads(pickle.dumps(query))
        assert clone.predicate.fingerprint() == predicate.fingerprint()
        assert clone.aggregates == query.aggregates
        assert clone.group_by == query.group_by


# ----------------------------------------------------------------------
# executor + server integration: end-to-end byte-identity
# ----------------------------------------------------------------------
def make_engine(seed: int = 13) -> SciBorq:
    catalog = Catalog()
    catalog.add_table(make_table(seed=seed))
    engine = SciBorq(
        catalog, interest_attributes={"x": (0.0, 100.0)}, rng=seed
    )
    engine.create_hierarchy(
        "T", policy="uniform", layer_sizes=(N // 4, N // 16)
    )
    # re-offer the already-loaded rows so the layers actually fill
    engine.rebuild("T")
    return engine


QUERIES = [
    Query(
        "T",
        predicate=Between("x", 15.0, 85.0),
        aggregates=(AggregateSpec("avg", "y"), AggregateSpec("count")),
    ),
    Query(
        "T",
        predicate=Comparison("y", "<", 60.0),
        aggregates=(AggregateSpec("sum", "y"), AggregateSpec("max", "y")),
    ),
]


def summarise(outcome):
    return (
        {
            name: (est.value, est.se, est.confidence)
            for name, est in outcome.result.estimates.items()
        },
        [
            (a.source, a.rows, a.cost, a.relative_error, a.satisfied)
            for a in outcome.attempts
        ],
        outcome.total_cost,
    )


class TestEndToEndIdentity:
    def test_executor_grouped_exact_identity(self, shard_env):
        catalog, pool = shard_env
        query = Query(
            "T",
            predicate=Between("x", 10.0, 90.0),
            aggregates=(AggregateSpec("avg", "y"), AggregateSpec("count")),
            group_by=("g",),
            order_by="g",
        )
        solo = Executor(catalog, parallel_scans=False).execute(query)
        sharded = Executor(
            catalog, parallel_scans=False, shard_pool=pool
        ).execute(query)
        assert solo.rows.column_names == sharded.rows.column_names
        for name in solo.rows.column_names:
            np.testing.assert_array_equal(
                sharded.rows[name], solo.rows[name]
            )
        assert sharded.stats.total_cost == solo.stats.total_cost

    def test_server_identity_and_accounting(self):
        contracts = [
            Contract.within_error(0.05),
            Contract.within_error(0.0005),  # forces the base rung
            Contract.exact(),
        ]

        def run(shard):
            engine = make_engine()
            pool = (
                ShardPool(engine.catalog, n_shards=2, min_rows=0)
                if shard
                else None
            )
            server = SciBorqServer(
                engine, **({"shard_pool": pool} if pool else {})
            )
            try:
                session = server.open_session()
                outcomes = [
                    summarise(server.execute(session, query, contract))
                    for query in QUERIES
                    for contract in contracts
                ]
                scatters = pool.stats.scatters if pool else 0
                return outcomes, scatters
            finally:
                server.shutdown()
                if pool is not None:
                    pool.close()

        solo_outcomes, _ = run(False)
        shard_outcomes, scatters = run(True)
        assert shard_outcomes == solo_outcomes
        assert scatters > 0  # the pool really served scans

    def test_server_owned_pool_lifecycle(self, monkeypatch, caplog):
        before_procs = set(multiprocessing.active_children())
        monkeypatch.setenv(SHARDS_ENV, "2")
        engine = make_engine()
        with caplog.at_level("INFO", logger="repro.shards"):
            server = SciBorqServer(engine, shard_pool=True)
        assert any("shard topology" in r.message for r in caplog.records)
        pool = server.shard_pool
        assert pool is not None
        assert engine.shard_pool is pool
        assert pool.n_workers == 2
        assert pool.source == f"env:{SHARDS_ENV}"
        server.shutdown()
        assert engine.shard_pool is None  # detached on shutdown
        # owned pool is closed: scatters decline and nothing leaks
        assert pool.scatter_scan(engine.catalog.table("T"), TruePredicate()) is None
        assert set(multiprocessing.active_children()) <= before_procs

    def test_server_ingest_invalidates_export(self):
        engine = make_engine()
        pool = ShardPool(engine.catalog, n_shards=2, min_rows=0)
        server = SciBorqServer(engine, shard_pool=pool)
        try:
            table = engine.catalog.table("T")
            assert pool.scatter_scan(table, Between("x", 0.0, 50.0))
            assert "T" in pool._exports
            rng = np.random.default_rng(3)
            server.ingest(
                "T",
                {
                    "x": rng.uniform(0, 100, BS),
                    "y": rng.uniform(0, 100, BS),
                    "v": rng.uniform(-5, 5, BS),
                    "g": rng.integers(0, 4, BS),
                },
            )
            assert "T" not in pool._exports
            # post-ingest scatter re-exports the new version, identically
            predicate = Between("x", 20.0, 45.0)
            solo_indices, solo_op = operators.select(
                table, predicate, pool=None
            )
            assert_same_scan(
                pool.scatter_scan(table, predicate), solo_indices, solo_op
            )
        finally:
            server.shutdown()
            pool.close()
