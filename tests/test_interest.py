"""Tests for the interest model (Figure 5 + f̆ + combine function)."""

import numpy as np
import pytest

from repro.columnstore.expressions import RadialPredicate
from repro.columnstore.query import Query
from repro.workload.interest import AttributeInterest, InterestModel


@pytest.fixture
def model() -> InterestModel:
    return InterestModel({"ra": (120.0, 240.0), "dec": (0.0, 60.0)}, bins=24)


def warm(model: InterestModel, rng, n=300) -> None:
    model.observe_values("ra", rng.normal(150, 4, n))
    model.observe_values("dec", rng.normal(10, 3, n))


class TestAttributeInterest:
    def test_mass_is_fbreve_times_N(self, rng):
        interest = AttributeInterest("ra", (120, 240), bins=24)
        values = rng.normal(150, 4, 200)
        interest.observe(values)
        mass = interest.mass(np.array([150.0]))[0]
        density = interest.kde.evaluate(np.array([150.0]))[0]
        assert mass == pytest.approx(density * 200)

    def test_cold_model_gives_unit_mass(self):
        interest = AttributeInterest("ra", (120, 240))
        np.testing.assert_array_equal(interest.mass(np.array([1.0, 2.0])), [1, 1])

    def test_decay_reduces_N(self, rng):
        interest = AttributeInterest("ra", (120, 240))
        interest.observe(rng.normal(150, 4, 100))
        interest.decay(0.5)
        assert interest.predicate_set_size <= 50


class TestInterestModel:
    def test_observe_query_feeds_attributes(self, model):
        model.observe_query(
            Query(table="t", predicate=RadialPredicate("ra", "dec", 185, 30, 2))
        )
        assert model.interest_for("ra").predicate_set_size == 1
        assert model.interest_for("dec").predicate_set_size == 1
        assert model.total_observations() == 2

    def test_mass_peaks_at_focal_point(self, model, rng):
        warm(model, rng)
        focal = model.mass({"ra": np.array([150.0]), "dec": np.array([10.0])})[0]
        distant = model.mass({"ra": np.array([230.0]), "dec": np.array([55.0])})[0]
        assert focal > 10 * distant

    def test_mass_with_partial_batch_uses_present_attributes(self, model, rng):
        warm(model, rng)
        only_ra = model.mass({"ra": np.array([150.0])})[0]
        assert only_ra > 1.0

    def test_mass_without_any_interest_attribute(self, model, rng):
        warm(model, rng)
        mass = model.mass({"mjd": np.zeros(4)})
        np.testing.assert_array_equal(mass, np.ones(4))

    def test_unknown_attribute_lookup(self, model):
        with pytest.raises(KeyError, match="no interest model"):
            model.interest_for("zzz")

    def test_decay_applies_to_all_attributes(self, model, rng):
        warm(model, rng)
        before = model.total_observations()
        model.decay(0.5)
        assert model.total_observations() <= before / 2 + 2

    def test_requires_domains(self):
        with pytest.raises(ValueError, match="at least one"):
            InterestModel({})

    def test_unknown_combiner(self):
        with pytest.raises(ValueError, match="combiner"):
            InterestModel({"x": (0, 1)}, combiner="median")


class TestCombiners:
    def build(self, combiner, rng):
        model = InterestModel(
            {"ra": (120.0, 240.0), "dec": (0.0, 60.0)}, bins=24, combiner=combiner
        )
        # interest only in ra; dec predicate set focused elsewhere
        model.observe_values("ra", rng.normal(150, 4, 300))
        model.observe_values("dec", rng.normal(50, 3, 300))
        return model

    def test_mean_averages_attribute_masses(self, rng):
        model = self.build("mean", rng)
        batch = {"ra": np.array([150.0]), "dec": np.array([5.0])}
        per_ra = model.interest_for("ra").mass(batch["ra"])[0]
        per_dec = model.interest_for("dec").mass(batch["dec"])[0]
        assert model.mass(batch)[0] == pytest.approx((per_ra + per_dec) / 2)

    def test_max_takes_strongest_signal(self, rng):
        model = self.build("max", rng)
        batch = {"ra": np.array([150.0]), "dec": np.array([5.0])}
        per_ra = model.interest_for("ra").mass(batch["ra"])[0]
        assert model.mass(batch)[0] == pytest.approx(per_ra)

    def test_geometric_zeroes_on_any_dead_attribute(self, rng):
        model = self.build("geometric", rng)
        # dec=5 is far outside dec's focal area -> near-zero density
        batch = {"ra": np.array([150.0]), "dec": np.array([5.0])}
        geo = model.mass(batch)[0]
        mean_model = self.build("mean", rng)
        assert geo < mean_model.mass(batch)[0]
