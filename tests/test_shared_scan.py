"""Tests for the shared-scan batch scheduler.

The headline guarantee: batching concurrent rung scans into one shared
pass changes *nothing* per query — results, tuples charged, and
``ProgressUpdate`` streams are byte-identical to solo execution.  The
tests pin that identity over randomized concurrent workloads, then the
machinery underneath (the flat-combining ``Combiner``, the
multi-consumer ``select_shared`` pass), the batching-window edge cases
(single query, disjoint tables, cancel mid-batch, per-session
opt-out), and the per-job exception annotation on ``execute_jobs``.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.columnstore import AggregateSpec, Query, operators
from repro.columnstore.catalog import Catalog
from repro.columnstore.column import Column
from repro.columnstore.expressions import And, Comparison, RadialPredicate
from repro.columnstore.table import Table
from repro.core.engine import SciBorq
from repro.core.scheduler import SharedScanScheduler
from repro.core.server import SciBorqServer
from repro.errors import UnknownColumnError
from repro.skyserver.generator import SkyGenerator, build_skyserver
from repro.skyserver.schema import DEC_RANGE, RA_RANGE, create_skyserver_catalog
from repro.util.clock import ExecutionContext
from repro.util.concurrency import Combiner


def make_engine(seed: int = 701) -> SciBorq:
    """A deterministic engine; equal seeds produce identical state."""
    engine = SciBorq(
        create_skyserver_catalog(),
        interest_attributes={"ra": RA_RANGE, "dec": DEC_RANGE},
        rng=seed,
    )
    engine.create_hierarchy(
        "PhotoObjAll", policy="uniform", layer_sizes=(6_000, 1_200)
    )
    build_skyserver(
        24_000, generator=SkyGenerator(rng=seed + 1), loader=engine.loader
    )
    return engine


def cone(ra: float, dec: float, radius: float) -> Query:
    return Query(
        table="PhotoObjAll",
        predicate=RadialPredicate("ra", "dec", ra, dec, radius),
        aggregates=[AggregateSpec("count"), AggregateSpec("avg", "r_mag")],
    )


def random_cones(rng: np.random.Generator, n: int) -> list:
    return [
        cone(
            float(rng.uniform(130.0, 230.0)),
            float(rng.uniform(2.0, 18.0)),
            float(rng.uniform(2.0, 9.0)),
        )
        for _ in range(n)
    ]


# ----------------------------------------------------------------------
# the flat-combining primitive
# ----------------------------------------------------------------------
class TestCombiner:
    def test_lone_caller_executes_immediately(self):
        combiner = Combiner()
        calls = []

        def execute(items):
            calls.append(list(items))
            return [item * 10 for item in items]

        assert combiner.run(4, execute) == 40
        assert calls == [[4]]

    def test_window_batches_co_arrivals(self):
        combiner = Combiner(window=2.0)
        calls = []
        results = {}

        def execute(items):
            calls.append(list(items))
            return [item + 100 for item in items]

        def submit(item):
            results[item] = combiner.run(item, execute)

        first = threading.Thread(target=submit, args=(1,))
        second = threading.Thread(target=submit, args=(2,))
        first.start()
        time.sleep(0.1)  # let the first become the (windowing) leader
        second.start()
        first.join(timeout=10)
        second.join(timeout=10)
        assert results == {1: 101, 2: 102}
        assert len(calls) == 1  # one batch served both
        assert sorted(calls[0]) == [1, 2]

    def test_convoys_form_under_queue_pressure(self):
        combiner = Combiner()  # window=0: nobody ever stalls alone
        release = threading.Event()
        followers_queued = threading.Event()
        calls = []

        def execute(items):
            if items == ["leader"]:
                # hold the first batch open until followers enqueue
                assert followers_queued.wait(timeout=10)
            calls.append(list(items))
            return [f"done-{item}" for item in items]

        outcomes = {}

        def submit(item):
            outcomes[item] = combiner.run(item, execute)

        leader = threading.Thread(target=submit, args=("leader",))
        leader.start()
        followers = [
            threading.Thread(target=submit, args=(f"f{i}",)) for i in range(3)
        ]
        for thread in followers:
            thread.start()
        # wait until all three followers are queued behind the leader
        deadline = time.time() + 10
        while len(combiner._pending) < 3 and time.time() < deadline:
            time.sleep(0.005)
        followers_queued.set()
        release.set()
        leader.join(timeout=10)
        for thread in followers:
            thread.join(timeout=10)
        assert outcomes == {
            "leader": "done-leader",
            "f0": "done-f0",
            "f1": "done-f1",
            "f2": "done-f2",
        }
        assert len(calls) == 2  # leader alone, then one convoy of three
        assert sorted(calls[1]) == ["f0", "f1", "f2"]

    def test_batch_error_reaches_every_member(self):
        combiner = Combiner(window=2.0)
        seen = []

        def execute(items):
            raise RuntimeError("shared failure")

        def submit(item):
            try:
                combiner.run(item, execute)
            except RuntimeError as exc:
                seen.append(str(exc))

        threads = [threading.Thread(target=submit, args=(i,)) for i in range(2)]
        threads[0].start()
        time.sleep(0.1)
        threads[1].start()
        for thread in threads:
            thread.join(timeout=10)
        assert seen == ["shared failure", "shared failure"]

    def test_result_count_mismatch_is_an_error(self):
        combiner = Combiner()
        with pytest.raises(RuntimeError, match="returned 0 results"):
            combiner.run(1, lambda items: [])

    def test_negative_window_rejected(self):
        with pytest.raises(ValueError):
            Combiner(window=-0.1)


# ----------------------------------------------------------------------
# the multi-consumer scan pass
# ----------------------------------------------------------------------
def blocked_table(rng: np.random.Generator, n: int = 4_000) -> Table:
    """A multi-block table so zone-map pruning actually prunes."""
    values = np.sort(rng.uniform(0.0, 100.0, n))  # sorted → prunable
    noise = rng.normal(0.0, 1.0, n)
    return Table(
        "facts",
        [
            Column("x", "float64", values, block_size=256),
            Column("y", "float64", noise, block_size=256),
        ],
    )


class TestSelectShared:
    def test_identical_to_solo_select_over_random_predicates(self):
        rng = np.random.default_rng(88)
        table = blocked_table(rng)
        predicates = []
        for _ in range(12):
            lo = float(rng.uniform(0.0, 90.0))
            predicates.append(
                And(
                    [
                        Comparison("x", ">=", lo),
                        Comparison("x", "<", lo + float(rng.uniform(1, 20))),
                    ]
                )
            )
        # include duplicates: dedup must not perturb per-consumer output
        predicates.append(predicates[0])
        shared = operators.select_shared(table, predicates)
        for predicate, outcome in zip(predicates, shared):
            solo_indices, solo_stats = operators.select(table, predicate)
            indices, stats = outcome
            assert np.array_equal(indices, solo_indices)
            assert stats == solo_stats
            assert stats.operator == "select"

    def test_bad_predicate_fails_only_its_own_consumer(self):
        rng = np.random.default_rng(89)
        table = blocked_table(rng, n=1_000)
        good = Comparison("x", "<", 50.0)
        bad = Comparison("no_such_column", ">", 0.0)
        outcomes = operators.select_shared(table, [good, bad, good])
        assert isinstance(outcomes[1], UnknownColumnError)
        for position in (0, 2):
            indices, stats = outcomes[position]
            solo_indices, solo_stats = operators.select(table, good)
            assert np.array_equal(indices, solo_indices)
            assert stats == solo_stats

    def test_empty_table(self):
        table = Table("empty", [Column("x", "float64", [])])
        outcomes = operators.select_shared(
            table, [Comparison("x", ">", 1.0)]
        )
        indices, stats = outcomes[0]
        assert indices.shape == (0,)
        assert stats.cost == 0


# ----------------------------------------------------------------------
# scheduler identity: batched == solo, per query
# ----------------------------------------------------------------------
def streams_of(handles):
    """Comparable per-query (updates, outcome) summaries."""
    summaries = []
    for handle in handles:
        outcome = handle.result()
        updates = [
            (
                update.rung,
                update.source,
                update.achieved_error,
                update.best_error,
                update.satisfied,
                update.spent,
                update.remaining,
            )
            for update in handle.updates
        ]
        attempts = [
            (a.source, a.rows, a.cost, a.relative_error, a.satisfied, a.delta_rows)
            for a in outcome.attempts
        ]
        estimates = {}
        if outcome.result.estimates:
            estimates = {
                name: (est.value, est.se)
                for name, est in outcome.result.estimates.items()
            }
        summaries.append(
            (updates, attempts, estimates, outcome.total_cost, outcome.met_quality)
        )
    return summaries


class TestSchedulerIdentity:
    def test_randomized_concurrent_workload_matches_solo(self):
        """Batched vs solo identity over a randomized workload.

        Two identically-seeded engines; one server shares scans, the
        other opted out wholesale.  Every query's progress stream,
        attempts, estimates, and total charge must match exactly.
        """
        rng = np.random.default_rng(2026)
        queries = random_cones(rng, 12)
        contract_errors = rng.uniform(0.01, 0.3, len(queries))

        def run(shared: bool):
            engine = make_engine()
            with SciBorqServer(
                engine, max_workers=4, shared_scans=shared
            ) as server:
                sessions = [server.open_session(f"u{i}") for i in range(4)]
                handles = []
                for position, query in enumerate(queries):
                    session = sessions[position % len(sessions)]
                    handles.append(
                        session.submit(
                            query,
                            session.contract(
                                max_relative_error=float(
                                    contract_errors[position]
                                )
                            ),
                        )
                    )
                summaries = streams_of(handles)
                stats = server.scheduler.stats if server.scheduler else None
            return summaries, stats

        batched, shared_stats = run(shared=True)
        solo, solo_stats = run(shared=False)
        assert batched == solo
        assert shared_stats is not None and shared_stats.scans > 0
        assert solo_stats is None

    def test_execute_many_matches_serial_engine(self):
        rng = np.random.default_rng(5150)
        queries = random_cones(rng, 8)
        serial_engine = make_engine()
        serial = [
            serial_engine.execute(query, max_relative_error=0.1)
            for query in queries
        ]
        with SciBorqServer(make_engine(), max_workers=4) as server:
            session = server.open_session(
                "bulk", max_relative_error=0.1
            )
            batched = session.execute_many(queries)
        for mine, theirs in zip(batched, serial):
            assert mine.total_cost == theirs.total_cost
            assert [a.cost for a in mine.attempts] == [
                a.cost for a in theirs.attempts
            ]
            for name, estimate in mine.result.estimates.items():
                assert estimate.value == theirs.result.estimates[name].value
                assert estimate.se == theirs.result.estimates[name].se

    def test_forced_convoy_dedups_equal_predicates(self):
        """Same query from many sessions: one evaluation, full charges."""
        engine = make_engine()
        with SciBorqServer(
            engine, max_workers=8, batch_window=0.25
        ) as server:
            sessions = [server.open_session(f"u{i}") for i in range(6)]
            query = cone(180.0, 10.0, 6.0)
            handles = [
                session.submit(
                    query, session.contract(max_relative_error=0.05)
                )
                for session in sessions
            ]
            outcomes = [handle.result() for handle in handles]
            stats = server.scheduler.stats
        # identical queries must produce identical outcomes and charges
        first = outcomes[0]
        for outcome in outcomes[1:]:
            assert outcome.total_cost == first.total_cost
            for name, estimate in outcome.result.estimates.items():
                assert estimate.value == first.result.estimates[name].value
        # and some of those scans must have been served by a sibling's
        # evaluation (six climbers of the same ladder, wide window)
        assert stats.deduped_scans > 0
        assert stats.tuples_saved > 0
        assert stats.scans > stats.batches  # at least one real convoy


# ----------------------------------------------------------------------
# edge cases
# ----------------------------------------------------------------------
class TestSchedulerEdges:
    def test_single_query_no_co_runners(self):
        """A lone query batches with nobody and still answers exactly."""
        serial_engine = make_engine()
        query = cone(150.0, 8.0, 5.0)
        expected = serial_engine.execute(query, max_relative_error=0.1)
        with SciBorqServer(make_engine(), max_workers=2) as server:
            session = server.open_session("lonely")
            outcome = session.execute(query, max_relative_error=0.1)
            stats = server.scheduler.stats
        assert outcome.total_cost == expected.total_cost
        assert stats.scans == stats.batches  # every convoy had size one
        assert stats.deduped_scans == 0

    def test_disjoint_tables_never_share_a_convoy(self):
        rng = np.random.default_rng(17)
        catalog = Catalog()
        for table_name in ("alpha", "beta"):
            n = 6_000
            catalog.add_table(
                Table(
                    table_name,
                    [
                        Column("ra", "float64", rng.uniform(120, 240, n)),
                        Column("dec", "float64", rng.uniform(0, 20, n)),
                        Column("flux", "float64", rng.lognormal(1.0, 0.4, n)),
                    ],
                )
            )
        engine = SciBorq(
            catalog,
            interest_attributes={"ra": RA_RANGE, "dec": DEC_RANGE},
            rng=23,
        )
        engine.create_hierarchy("alpha", policy="uniform", layer_sizes=(1_500,))
        engine.create_hierarchy("beta", policy="uniform", layer_sizes=(1_500,))

        def probe(table_name: str) -> Query:
            return Query(
                table=table_name,
                predicate=RadialPredicate("ra", "dec", 180.0, 10.0, 8.0),
                aggregates=[AggregateSpec("avg", "flux")],
            )

        with SciBorqServer(engine, max_workers=4, batch_window=0.2) as server:
            one = server.open_session("one")
            two = server.open_session("two")
            outcomes = server.execute_many(
                [(one, probe("alpha")), (two, probe("beta"))]
            )
            stats = server.scheduler.stats
        assert all(outcome.result is not None for outcome in outcomes)
        # equal fingerprints, but different tables → no dedup possible
        assert stats.deduped_scans == 0

    def test_cancel_mid_batch_leaves_siblings_intact(self):
        """Cancelling one enrolled query never perturbs its convoy."""
        serial_engine = make_engine()
        query = cone(170.0, 9.0, 5.0)
        expected = serial_engine.execute(query, max_relative_error=0.0)
        with SciBorqServer(
            make_engine(), max_workers=4, batch_window=0.1
        ) as server:
            sessions = [server.open_session(f"u{i}") for i in range(3)]
            handles = [
                session.submit(
                    query, session.contract(max_relative_error=0.0)
                )
                for session in sessions
            ]
            cancelled = handles[0].cancel()
            survivors = [handle.result() for handle in handles[1:]]
        for outcome in survivors:
            assert outcome.total_cost == expected.total_cost
            for name, estimate in outcome.result.estimates.items():
                assert estimate.value == expected.result.estimates[name].value
        # the cancelled climb stopped at some prefix of the ladder
        assert len(cancelled.attempts) <= len(expected.attempts)
        assert cancelled.total_cost <= expected.total_cost

    def test_session_opt_out_bypasses_scheduler(self):
        with SciBorqServer(make_engine(), max_workers=2) as server:
            loner = server.open_session("loner", shared_scans=False)
            loner.execute(cone(160.0, 8.0, 4.0), max_relative_error=0.2)
            assert server.scheduler.stats.scans == 0
            joiner = server.open_session("joiner")
            joiner.execute(cone(160.0, 8.0, 4.0), max_relative_error=0.2)
            assert server.scheduler.stats.scans > 0

    def test_context_flag_bypasses_scheduler_at_executor_level(self):
        rng = np.random.default_rng(3)
        table = blocked_table(rng, n=1_000)
        catalog = Catalog()
        catalog.add_table(table)
        from repro.columnstore.executor import Executor

        scheduler = SharedScanScheduler()
        executor = Executor(catalog, scheduler=scheduler)
        predicate = Comparison("x", "<", 40.0)
        opted_out = ExecutionContext(shared_scans=False)
        executor.select_indices(table, predicate, opted_out, recycle=False)
        assert scheduler.stats.scans == 0
        enrolled = ExecutionContext()
        executor.select_indices(table, predicate, enrolled, recycle=False)
        assert scheduler.stats.scans == 1
        assert opted_out.charged_units == enrolled.charged_units

    def test_scheduler_error_path_matches_solo(self):
        """A query with a broken predicate raises just like solo."""
        with SciBorqServer(make_engine(), max_workers=2) as server:
            session = server.open_session("oops")
            bad = Query(
                table="PhotoObjAll",
                predicate=Comparison("missing", ">", 0.0),
                aggregates=[AggregateSpec("count")],
            )
            with pytest.raises(UnknownColumnError):
                session.execute(bad, max_relative_error=0.5)

    def test_scheduler_stats_describe(self):
        scheduler = SharedScanScheduler()
        snapshot = scheduler.stats
        assert snapshot.mean_batch_size == 0.0
        assert "0 batch(es)" in snapshot.describe()
        assert "window=0" in repr(scheduler)

    def test_memo_hits_do_not_inflate_convoy_size(self):
        rng = np.random.default_rng(41)
        table = blocked_table(rng, n=1_000)
        scheduler = SharedScanScheduler()
        predicate = Comparison("x", "<", 55.0)
        for _ in range(10):
            scheduler.scan(table, predicate, ExecutionContext())
        stats = scheduler.stats
        assert stats.scans == 10
        assert stats.batches == 1  # one evaluation, nine memo serves
        assert stats.convoy_scans == 1
        assert stats.mean_batch_size == 1.0
        assert stats.deduped_scans == 9

    def test_shared_serves_do_not_poison_wall_throughput(self):
        """Memo-served charges must not count as observed work.

        A memo hit charges full solo cost in ~no wall time; if the
        wall-mode throughput calibration counted it, one shared serve
        would record a near-infinite tuples/sec rate and later time
        budgets would afford everything.
        """
        from repro.core.bounded import BoundedQueryProcessor
        from repro.util.clock import WallClock

        engine = make_engine()
        scheduler = SharedScanScheduler()
        engine.set_scan_scheduler(scheduler)
        processor = BoundedQueryProcessor(
            engine.catalog,
            engine.hierarchy("PhotoObjAll"),
            clock=WallClock(),
            scheduler=scheduler,
        )
        query = cone(175.0, 9.0, 4.0)
        first_ctx = processor.new_context()
        processor.execute(query, context=first_ctx)
        calibrated = processor._throughput
        assert calibrated is not None and calibrated > 0
        # an identical query: every rung scan is served from the memo
        second_ctx = processor.new_context()
        processor.execute(query, context=second_ctx)
        assert second_ctx.shared_units > 0
        after = processor._throughput
        # a poisoned blend would jump orders of magnitude; shared
        # serves are excluded, so the rate stays the same order
        assert after <= calibrated * 10

    def test_convoyed_failures_are_distinct_exception_objects(self):
        """Deduped bad scans must not share one exception instance.

        ``execute_jobs`` annotates failures with their originating
        query/session; a shared instance would be last-writer-wins.
        """
        rng = np.random.default_rng(7)
        table = blocked_table(rng, n=1_000)
        scheduler = SharedScanScheduler(window=1.0)
        bad = Comparison("no_such_column", ">", 0.0)
        caught = []

        def submit():
            try:
                scheduler.scan(table, bad, ExecutionContext())
            except UnknownColumnError as exc:
                caught.append(exc)

        first = threading.Thread(target=submit)
        second = threading.Thread(target=submit)
        first.start()
        time.sleep(0.1)  # let the first lead and wait out its window
        second.start()
        first.join(timeout=10)
        second.join(timeout=10)
        assert len(caught) == 2
        assert caught[0] is not caught[1]

    def test_leader_consults_memo_for_scans_queued_behind_a_pass(self):
        """A scan enqueued while its twin executes must not re-scan.

        Lane passes are serialised, so by the time the late arrival
        leads its own convoy, the twin's result is in the memo — the
        leader must serve it from there instead of re-reading the
        table ('read once per distinct predicate, no matter how
        arrivals interleave').
        """
        rng = np.random.default_rng(29)
        table = blocked_table(rng, n=2_000)
        scheduler = SharedScanScheduler()
        predicate = Comparison("x", "<", 60.0)
        in_pass = threading.Event()
        release = threading.Event()
        original = operators.select_shared
        calls = []

        def slow_select_shared(*args, **kwargs):
            calls.append(args[1])
            in_pass.set()
            assert release.wait(timeout=10)
            return original(*args, **kwargs)

        outcomes = []

        def submit():
            outcomes.append(
                scheduler.scan(table, predicate, ExecutionContext())
            )

        import repro.core.scheduler as scheduler_module

        scheduler_module.operators.select_shared = slow_select_shared
        try:
            first = threading.Thread(target=submit)
            first.start()
            assert in_pass.wait(timeout=10)  # first pass is executing
            second = threading.Thread(target=submit)
            second.start()
            time.sleep(0.1)  # second enqueues behind the busy lane
            release.set()
            first.join(timeout=10)
            second.join(timeout=10)
        finally:
            scheduler_module.operators.select_shared = original
        assert len(outcomes) == 2
        assert np.array_equal(outcomes[0][0], outcomes[1][0])
        assert outcomes[0][1] == outcomes[1][1]
        # the predicate was evaluated exactly once across both scans
        assert sum(len(preds) for preds in calls) == 1
        assert scheduler.stats.deduped_scans == 1

    def test_dead_lanes_swept_on_generation_boundary(self):
        rng = np.random.default_rng(31)
        scheduler = SharedScanScheduler()
        predicate = Comparison("x", "<", 10.0)
        for _ in range(5):
            table = blocked_table(rng, n=512)
            scheduler.scan(table, predicate, ExecutionContext())
            del table  # this generation's table dies
        # each new-lane creation sweeps the dead ones: only the live
        # lane (if the last table were alive) or none remain
        assert len(scheduler._lanes) <= 1

    def test_serial_executor_never_enrols(self):
        rng = np.random.default_rng(37)
        table = blocked_table(rng, n=1_000)
        catalog = Catalog()
        catalog.add_table(table)
        from repro.columnstore.executor import Executor

        scheduler = SharedScanScheduler()
        serial = Executor(catalog, parallel_scans=False, scheduler=scheduler)
        indices, op, recycled = serial.select_indices(
            table, Comparison("x", "<", 30.0), ExecutionContext(), recycle=False
        )
        assert scheduler.stats.scans == 0  # stayed on the solo serial path
        solo, solo_op = operators.select(table, Comparison("x", "<", 30.0))
        assert np.array_equal(indices, solo)

    def test_memo_is_byte_bounded(self):
        from repro.core.scheduler import _MEMO_BYTES

        rng = np.random.default_rng(11)
        table = blocked_table(rng, n=1_000)
        scheduler = SharedScanScheduler()
        context = ExecutionContext()
        for i in range(40):
            lo = float(i)
            scheduler.scan(
                table, Comparison("x", ">=", lo), context
            )
        lanes = list(scheduler._lanes.values())
        assert len(lanes) == 1
        assert 0 < lanes[0].memo_bytes <= _MEMO_BYTES

    def test_shutdown_does_not_clobber_a_later_scheduler(self):
        engine = make_engine()
        first = SciBorqServer(engine, max_workers=1)
        second = SciBorqServer(engine, max_workers=1)
        assert engine.scan_scheduler is second.scheduler
        first.shutdown()
        assert engine.scan_scheduler is second.scheduler
        # the last owner's exit restores whatever it displaced
        second.shutdown()
        assert engine.scan_scheduler is first.scheduler

    def test_single_owner_shutdown_detaches_fully(self):
        engine = make_engine()
        with SciBorqServer(engine, max_workers=1):
            assert engine.scan_scheduler is not None
        assert engine.scan_scheduler is None

    def test_whole_pass_failure_falls_back_to_solo_scans(self):
        """A pass-level crash must not fan one exception to everyone."""
        rng = np.random.default_rng(43)
        table = blocked_table(rng, n=1_000)
        scheduler = SharedScanScheduler()
        predicate = Comparison("x", "<", 45.0)

        def broken_execute(*args, **kwargs):
            raise RuntimeError("pass blew up")

        scheduler._execute = broken_execute
        indices, stats = scheduler.scan(table, predicate, ExecutionContext())
        solo, solo_stats = operators.select(table, predicate)
        assert np.array_equal(indices, solo)
        assert stats == solo_stats

    def test_shared_scans_false_leaves_installed_scheduler_alone(self):
        engine = make_engine()
        scheduler = SharedScanScheduler()
        engine.set_scan_scheduler(scheduler)
        with SciBorqServer(engine, max_workers=1, shared_scans=False):
            assert engine.scan_scheduler is scheduler

    def test_execute_jobs_accepts_a_generator(self):
        with SciBorqServer(make_engine(), max_workers=2) as server:
            session = server.open_session("gen")
            queries = [cone(150.0, 8.0, 5.0), cone(200.0, 12.0, 4.0)]
            jobs = (
                (session, query, session.defaults, None) for query in queries
            )
            results = server.execute_jobs(jobs)
            assert len(results) == 2
            assert all(r.result is not None for r in results)


# ----------------------------------------------------------------------
# execute_jobs exception annotation (regression)
# ----------------------------------------------------------------------
class TestExecuteManyExceptions:
    def test_failed_job_carries_its_query_and_session(self):
        with SciBorqServer(make_engine(), max_workers=2) as server:
            session = server.open_session("mixed")
            good = cone(180.0, 10.0, 6.0)
            bad = Query(
                table="PhotoObjAll",
                predicate=Comparison("nope", ">", 1.0),
                aggregates=[AggregateSpec("count")],
            )
            results = session.execute_many(
                [good, bad, good], return_exceptions=True
            )
            assert results[0].result is not None
            assert results[2].result is not None
            failure = results[1]
            assert isinstance(failure, UnknownColumnError)
            assert failure.query is bad
            assert failure.session is session

    def test_raised_first_error_is_annotated_too(self):
        with SciBorqServer(make_engine(), max_workers=2) as server:
            session = server.open_session("strict")
            bad = Query(
                table="PhotoObjAll",
                predicate=Comparison("nope", ">", 1.0),
                aggregates=[AggregateSpec("count")],
            )
            with pytest.raises(UnknownColumnError) as excinfo:
                session.execute_many([cone(180.0, 10.0, 6.0), bad])
            assert excinfo.value.query is bad
            assert excinfo.value.session is session

    def test_good_jobs_still_complete_around_a_failure(self):
        with SciBorqServer(make_engine(), max_workers=2) as server:
            session = server.open_session("resilient")
            good = cone(200.0, 12.0, 5.0)
            bad = Query(
                table="PhotoObjAll",
                predicate=Comparison("nope", ">", 1.0),
                aggregates=[AggregateSpec("count")],
            )
            results = session.execute_many(
                [bad, good], return_exceptions=True
            )
            assert isinstance(results[0], UnknownColumnError)
            solo = make_engine().execute(good)
            assert results[1].total_cost == solo.total_cost
