"""Tests for the focal-point workload generator."""

import numpy as np
import pytest

from repro.columnstore.expressions import RadialPredicate
from repro.skyserver.workload_gen import (
    DEFAULT_FOCAL_POINTS,
    FocalPoint,
    WorkloadGenerator,
)


class TestFocalPoint:
    def test_validation(self):
        with pytest.raises(ValueError):
            FocalPoint(150, 10, spread_ra=0)
        with pytest.raises(ValueError):
            FocalPoint(150, 10, weight=0)


class TestQueryStream:
    def test_counts(self):
        wg = WorkloadGenerator(rng=0)
        queries = list(wg.queries(25))
        assert len(queries) == 25
        assert wg.queries_generated == 25

    def test_cone_fraction_respected(self):
        wg = WorkloadGenerator(cone_fraction=1.0, rng=1)
        for query in wg.queries(30):
            assert isinstance(query.predicate, RadialPredicate)

    def test_non_cone_queries_exist(self):
        wg = WorkloadGenerator(cone_fraction=0.0, rng=2)
        kinds = {type(q.predicate).__name__ for q in wg.queries(30)}
        assert kinds == {"Between"}

    def test_aggregate_fraction_extremes(self):
        all_agg = WorkloadGenerator(aggregate_fraction=1.0, cone_fraction=1.0, rng=3)
        assert all(q.is_aggregate for q in all_agg.queries(20))
        no_agg = WorkloadGenerator(aggregate_fraction=0.0, cone_fraction=1.0, rng=4)
        assert not any(q.is_aggregate for q in no_agg.queries(20))

    def test_cone_centres_cluster_at_focal_points(self):
        wg = WorkloadGenerator(cone_fraction=1.0, rng=5)
        ps = wg.predicate_set(300)
        ra = ps["ra"]
        close_to_focals = np.zeros(ra.shape[0], dtype=bool)
        for fp in DEFAULT_FOCAL_POINTS:
            close_to_focals |= np.abs(ra - fp.ra) < 3 * fp.spread_ra
        assert close_to_focals.mean() > 0.95

    def test_weights_steer_focal_choice(self):
        heavy_first = WorkloadGenerator(
            focal_points=(
                FocalPoint(150, 10, weight=9.0),
                FocalPoint(205, 40, weight=1.0),
            ),
            cone_fraction=1.0,
            rng=6,
        )
        ra = heavy_first.predicate_set(200)["ra"]
        near_first = (np.abs(ra - 150) < 20).mean()
        assert near_first > 0.75


class TestShift:
    def test_shift_moves_the_predicate_set(self):
        wg = WorkloadGenerator(cone_fraction=1.0, rng=7)
        before = wg.predicate_set(200)["ra"]
        wg.shift([FocalPoint(230, 55, spread_ra=2, spread_dec=2)])
        after = wg.predicate_set(200)["ra"]
        assert abs(np.mean(after) - 230) < 10
        assert abs(np.mean(before) - np.mean(after)) > 20

    def test_shift_requires_focal_points(self):
        wg = WorkloadGenerator(rng=8)
        with pytest.raises(ValueError, match="at least one"):
            wg.shift([])


class TestPredicateSet:
    def test_only_requested_attributes(self):
        wg = WorkloadGenerator(rng=9)
        ps = wg.predicate_set(100, attributes=("ra",))
        assert set(ps) == {"ra"}

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one focal"):
            WorkloadGenerator(focal_points=())
        with pytest.raises(ValueError, match="cone_fraction"):
            WorkloadGenerator(cone_fraction=1.5)
