"""Tests for the query executor (incl. view expansion and retargeting)."""

import numpy as np
import pytest

from repro.columnstore import (
    AggregateSpec,
    Between,
    Executor,
    JoinSpec,
    Query,
    Recycler,
)
from repro.columnstore.expressions import col_eq
from repro.errors import QueryError
from repro.util.clock import CostClock


class TestRowQueries:
    def test_select_rows(self, small_catalog):
        ex = Executor(small_catalog)
        result = ex.execute(
            Query(table="fact", predicate=Between("x", 10, 11), select=("id", "x"))
        )
        assert result.rows is not None
        assert result.rows.column_names == ["id", "x"]
        assert (result.rows["x"] >= 10).all() and (result.rows["x"] <= 11).all()

    def test_order_and_limit(self, small_catalog):
        ex = Executor(small_catalog)
        result = ex.execute(
            Query(table="fact", order_by="x", descending=True, limit=5)
        )
        values = result.rows["x"]
        assert values.shape[0] == 5
        assert (np.diff(values) <= 0).all()
        assert values[0] == small_catalog.table("fact")["x"].max()

    def test_projection_of_missing_column(self, small_catalog):
        ex = Executor(small_catalog)
        with pytest.raises(QueryError, match="missing columns"):
            ex.execute(Query(table="fact", select=("nope",)))


class TestAggregates:
    def test_scalar_aggregates_match_numpy(self, small_catalog):
        ex = Executor(small_catalog)
        result = ex.execute(
            Query(
                table="fact",
                aggregates=[AggregateSpec("count"), AggregateSpec("avg", "x")],
            )
        )
        x = small_catalog.table("fact")["x"]
        assert result.scalar("count(*)") == x.shape[0]
        assert result.scalar("avg(x)") == pytest.approx(x.mean())

    def test_scalar_lookup_errors(self, small_catalog):
        ex = Executor(small_catalog)
        result = ex.execute(
            Query(table="fact", aggregates=[AggregateSpec("count")])
        )
        with pytest.raises(QueryError, match="no aggregate named"):
            result.scalar("sum(x)")
        row_result = ex.execute(Query(table="fact"))
        with pytest.raises(QueryError, match="did not produce"):
            row_result.scalar("count(*)")

    def test_grouped_aggregates(self, small_catalog):
        ex = Executor(small_catalog)
        result = ex.execute(
            Query(
                table="fact",
                aggregates=[AggregateSpec("count")],
                group_by=("grp",),
                order_by="count(*)",
                descending=True,
            )
        )
        counts = result.rows["count(*)"]
        assert counts.sum() == 1000
        assert (np.diff(counts) <= 0).all()


class TestJoins:
    def test_fk_join_carries_dimension_column(self, small_catalog):
        ex = Executor(small_catalog)
        result = ex.execute(
            Query(
                table="fact",
                joins=[JoinSpec("dim", "grp", "grp", ("label_code",))],
                select=("id", "grp", "label_code"),
            )
        )
        np.testing.assert_array_equal(
            result.rows["label_code"], result.rows["grp"] * 100
        )

    def test_join_then_aggregate(self, small_catalog):
        ex = Executor(small_catalog)
        result = ex.execute(
            Query(
                table="fact",
                joins=[JoinSpec("dim", "grp", "grp", ("label_code",))],
                aggregates=[AggregateSpec("avg", "label_code")],
            )
        )
        fact = small_catalog.table("fact")
        assert result.scalar("avg(label_code)") == pytest.approx(
            (fact["grp"] * 100).mean()
        )


class TestCostAccounting:
    def test_clock_charged_per_tuple(self, small_catalog):
        clock = CostClock()
        ex = Executor(small_catalog, clock=clock)
        ex.execute(Query(table="fact", aggregates=[AggregateSpec("count")]))
        # select reads 1000, aggregate reads 1000 matching rows
        assert clock.now == 2000

    def test_stats_describe_mentions_operators(self, small_catalog):
        ex = Executor(small_catalog)
        result = ex.execute(
            Query(table="fact", predicate=Between("x", 0, 100), limit=3)
        )
        text = result.stats.describe()
        assert "select" in text and "limit" in text


class TestRecycling:
    def test_second_execution_recycles(self, small_catalog):
        ex = Executor(small_catalog, recycler=Recycler())
        q = Query(table="fact", predicate=Between("x", 9, 11))
        first = ex.execute(q)
        second = ex.execute(q)
        assert not first.stats.recycled
        assert second.stats.recycled
        assert second.rows.num_rows == first.rows.num_rows

    def test_append_invalidates_recycled_entry(self, small_catalog):
        ex = Executor(small_catalog, recycler=Recycler())
        q = Query(table="fact", predicate=Between("x", 9, 11))
        ex.execute(q)
        small_catalog.table("fact").append_batch(
            {"id": [10_000], "x": [10.0], "grp": [0]}
        )
        result = ex.execute(q)
        assert not result.stats.recycled  # version changed -> miss


class TestFactTableOverride:
    def test_override_runs_same_query_on_other_table(self, small_catalog):
        ex = Executor(small_catalog)
        sample = small_catalog.table("fact").take(np.arange(100), "sample")
        q = Query(table="fact", aggregates=[AggregateSpec("count")])
        result = ex.execute(q, fact_table=sample)
        assert result.scalar("count(*)") == 100
        assert result.stats.source == "sample"


class TestViewExpansion:
    def test_view_query_applies_view_predicate(self, small_catalog):
        small_catalog.add_view(
            "grp0", Query(table="fact", predicate=col_eq("grp", 0))
        )
        ex = Executor(small_catalog)
        result = ex.execute(
            Query(table="grp0", aggregates=[AggregateSpec("count")])
        )
        expected = (small_catalog.table("fact")["grp"] == 0).sum()
        assert result.scalar("count(*)") == expected

    def test_view_query_composes_with_own_predicate(self, small_catalog):
        small_catalog.add_view(
            "grp0", Query(table="fact", predicate=col_eq("grp", 0))
        )
        ex = Executor(small_catalog)
        fact = small_catalog.table("fact")
        expected = ((fact["grp"] == 0) & (fact["x"] > 10)).sum()
        result = ex.execute(
            Query(
                table="grp0",
                predicate=Between("x", 10.000001, 1e9),
                aggregates=[AggregateSpec("count")],
            )
        )
        assert result.scalar("count(*)") == expected
