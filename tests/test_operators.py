"""Tests for the vectorised relational operators."""

import numpy as np
import pytest

from repro.columnstore import operators
from repro.columnstore.expressions import Between
from repro.columnstore.query import AggregateSpec
from repro.columnstore.table import Table
from repro.errors import QueryError


@pytest.fixture
def fact() -> Table:
    return Table.from_arrays(
        "fact",
        {
            "id": np.arange(6),
            "v": np.array([1.0, 2.0, 3.0, 4.0, 5.0, 6.0]),
            "g": np.array([0, 0, 1, 1, 2, 2]),
        },
    )


@pytest.fixture
def dim() -> Table:
    return Table.from_arrays(
        "dim", {"g": np.array([0, 1, 2]), "w": np.array([10.0, 20.0, 30.0])}
    )


class TestSelect:
    def test_returns_indices_and_stats(self, fact):
        indices, stats = operators.select(fact, Between("v", 2, 4))
        np.testing.assert_array_equal(indices, [1, 2, 3])
        assert stats.tuples_in == 6 and stats.tuples_out == 3
        assert stats.cost == 6  # cost = tuples read


class TestJoin:
    def test_fk_lookup(self, fact, dim):
        left, right, stats = operators.equi_join(fact, dim, "g", "g")
        assert left.shape[0] == 6  # every fact row matches one dim row
        np.testing.assert_array_equal(dim["g"][right], fact["g"][left])
        assert stats.tuples_in == 9

    def test_many_to_many(self):
        left = Table.from_arrays("l", {"k": np.array([1, 1])})
        right = Table.from_arrays("r", {"k": np.array([1, 1, 2])})
        li, ri, stats = operators.equi_join(left, right, "k", "k")
        assert li.shape[0] == 4  # 2 x 2 matches
        assert stats.tuples_out == 4

    def test_no_matches(self):
        left = Table.from_arrays("l", {"k": np.array([5])})
        right = Table.from_arrays("r", {"k": np.array([1])})
        li, ri, _ = operators.equi_join(left, right, "k", "k")
        assert li.shape[0] == 0 and ri.shape[0] == 0

    def test_materialise_prefixes_collisions(self, fact, dim):
        li, ri, _ = operators.equi_join(fact, dim, "g", "g")
        joined = operators.materialise_join(fact, dim, li, ri, ())
        assert "dim.g" in joined.column_names or "w" in joined.column_names
        assert "w" in joined.column_names

    def test_materialise_respects_projection(self, fact, dim):
        li, ri, _ = operators.equi_join(fact, dim, "g", "g")
        joined = operators.materialise_join(fact, dim, li, ri, ("w",))
        assert joined.column_names == ["id", "v", "g", "w"]


class TestAggregate:
    def test_all_functions(self, fact):
        specs = [
            AggregateSpec("count"),
            AggregateSpec("sum", "v"),
            AggregateSpec("avg", "v"),
            AggregateSpec("min", "v"),
            AggregateSpec("max", "v"),
            AggregateSpec("var", "v"),
            AggregateSpec("std", "v"),
        ]
        result, stats = operators.aggregate(fact, specs)
        assert result["count(*)"] == 6
        assert result["sum(v)"] == 21.0
        assert result["avg(v)"] == 3.5
        assert result["min(v)"] == 1.0
        assert result["max(v)"] == 6.0
        assert result["var(v)"] == pytest.approx(3.5)
        assert result["std(v)"] == pytest.approx(np.sqrt(3.5))
        assert stats.tuples_in == 6

    def test_empty_input_gives_nan(self, fact):
        empty = fact.filter(np.zeros(6, dtype=bool))
        result, _ = operators.aggregate(empty, [AggregateSpec("avg", "v")])
        assert np.isnan(result["avg(v)"])
        result, _ = operators.aggregate(empty, [AggregateSpec("count")])
        assert result["count(*)"] == 0.0

    def test_min_max_on_non_numeric_raise_cleanly(self):
        """Regression: MIN/MAX slipped past the numeric gate and died
        with a numpy coercion error inside the kernel; they must raise
        a clean QueryError while COUNT keeps working."""
        t = Table.from_arrays(
            "t", {"label": np.array(["b", "a", "c"], dtype="<U1")}
        )
        for fn in ("min", "max"):
            with pytest.raises(QueryError, match="numeric column"):
                operators.aggregate(t, [AggregateSpec(fn, "label")])
        result, _ = operators.aggregate(t, [AggregateSpec("count", "label")])
        assert result["count(label)"] == 3.0

    def test_boolean_columns_still_aggregate(self):
        """Booleans coerce to floats losslessly and must keep working
        through the tightened non-numeric gate."""
        t = Table.from_arrays(
            "t",
            {
                "g": np.array([0, 0, 1, 1]),
                "flag": np.array([True, False, True, True]),
            },
        )
        result, _ = operators.aggregate(
            t, [AggregateSpec("min", "flag"), AggregateSpec("max", "flag")]
        )
        assert result["min(flag)"] == 0.0
        assert result["max(flag)"] == 1.0
        grouped, _ = operators.group_aggregate(
            t, ["g"], [AggregateSpec("sum", "flag"), AggregateSpec("min", "flag")]
        )
        np.testing.assert_array_equal(grouped["sum(flag)"], [1.0, 2.0])
        np.testing.assert_array_equal(grouped["min(flag)"], [0.0, 1.0])


class TestGroupAggregate:
    def test_counts_and_sums(self, fact):
        result, stats = operators.group_aggregate(
            fact, ["g"], [AggregateSpec("count"), AggregateSpec("sum", "v")]
        )
        assert result.num_rows == 3
        np.testing.assert_array_equal(result["count(*)"], [2.0, 2.0, 2.0])
        np.testing.assert_array_equal(result["sum(v)"], [3.0, 7.0, 11.0])
        assert stats.tuples_out == 3

    def test_avg_min_max(self, fact):
        result, _ = operators.group_aggregate(
            fact,
            ["g"],
            [
                AggregateSpec("avg", "v"),
                AggregateSpec("min", "v"),
                AggregateSpec("max", "v"),
            ],
        )
        np.testing.assert_array_equal(result["avg(v)"], [1.5, 3.5, 5.5])
        np.testing.assert_array_equal(result["min(v)"], [1.0, 3.0, 5.0])
        np.testing.assert_array_equal(result["max(v)"], [2.0, 4.0, 6.0])

    def test_var_matches_numpy(self, fact):
        result, _ = operators.group_aggregate(
            fact, ["g"], [AggregateSpec("var", "v")]
        )
        for g in range(3):
            expected = fact["v"][fact["g"] == g].var(ddof=1)
            assert result["var(v)"][g] == pytest.approx(expected)

    def test_var_stable_for_large_means(self):
        """Regression: the raw-moment grouped variance (Σv² − n·mean²)
        cancelled catastrophically for large means and clamped to 0.0;
        the centred two-pass kernel must agree with numpy."""
        rng = np.random.default_rng(9)
        v = 1e8 + rng.normal(0.0, 1.0, 10_000)
        g = rng.integers(0, 3, v.shape[0])
        t = Table.from_arrays("t", {"g": g, "v": v})
        result, _ = operators.group_aggregate(
            t, ["g"], [AggregateSpec("var", "v"), AggregateSpec("std", "v")]
        )
        for group in range(3):
            expected = v[g == group].var(ddof=1)
            assert result["var(v)"][group] == pytest.approx(expected, rel=1e-6)
            assert result["std(v)"][group] == pytest.approx(
                np.sqrt(expected), rel=1e-6
            )

    def test_multi_key_grouping(self):
        t = Table.from_arrays(
            "t",
            {
                "a": np.array([0, 0, 1, 1]),
                "b": np.array([0, 1, 0, 1]),
                "v": np.array([1.0, 2.0, 3.0, 4.0]),
            },
        )
        result, _ = operators.group_aggregate(t, ["a", "b"], [AggregateSpec("count")])
        assert result.num_rows == 4

    def test_requires_keys(self, fact):
        with pytest.raises(QueryError, match="at least one key"):
            operators.group_aggregate(fact, [], [AggregateSpec("count")])

    def test_singleton_groups_have_zero_variance(self):
        t = Table.from_arrays(
            "t", {"g": np.array([0, 1]), "v": np.array([5.0, 7.0])}
        )
        result, _ = operators.group_aggregate(t, ["g"], [AggregateSpec("var", "v")])
        np.testing.assert_array_equal(result["var(v)"], [0.0, 0.0])

    def test_count_with_column_skips_the_gather(self, fact, monkeypatch):
        """COUNT(col) must not pay for a full permutation gather of a
        value column it never reads (it equals the group sizes)."""
        gathers = []
        original = Table.__getitem__

        def spy(table, name):
            gathers.append(name)
            return original(table, name)

        monkeypatch.setattr(Table, "__getitem__", spy)
        result, _ = operators.group_aggregate(
            fact, ["g"], [AggregateSpec("count", "v")]
        )
        np.testing.assert_array_equal(result["count(v)"], [2.0, 2.0, 2.0])
        assert "v" not in gathers  # the value column is never read

    def test_count_still_validates_its_column_name(self, fact):
        """Skipping the gather must not skip name validation: a typo'd
        COUNT column raises instead of silently returning group sizes."""
        from repro.errors import UnknownColumnError

        with pytest.raises(UnknownColumnError):
            operators.group_aggregate(
                fact, ["g"], [AggregateSpec("count", "nope")]
            )

    def test_non_numeric_group_values_raise_cleanly(self):
        t = Table.from_arrays(
            "t",
            {
                "g": np.array([0, 0, 1]),
                "label": np.array(["x", "y", "z"], dtype="<U1"),
            },
        )
        with pytest.raises(QueryError, match="numeric column"):
            operators.group_aggregate(t, ["g"], [AggregateSpec("sum", "label")])


class TestSortLimit:
    def test_sort_ascending_descending(self, fact):
        asc, _ = operators.sort(fact, "v")
        desc, _ = operators.sort(fact, "v", descending=True)
        np.testing.assert_array_equal(asc["v"], np.sort(fact["v"]))
        np.testing.assert_array_equal(desc["v"], np.sort(fact["v"])[::-1])

    def test_descending_sort_keeps_ties_in_input_order(self):
        """Regression: reversing the ascending stable order flipped
        tie runs back-to-front."""
        t = Table.from_arrays(
            "t",
            {
                "key": np.array([1.0, 2.0, 1.0, 2.0, 1.0]),
                "pos": np.arange(5),
            },
        )
        out, _ = operators.sort(t, "key", descending=True)
        np.testing.assert_array_equal(out["key"], [2.0, 2.0, 1.0, 1.0, 1.0])
        # within each tie run, original input order must survive
        np.testing.assert_array_equal(out["pos"], [1, 3, 0, 2, 4])

    def test_descending_sort_stable_for_strings(self):
        t = Table.from_arrays(
            "t",
            {
                "key": np.array(["b", "a", "b", "a"]),
                "pos": np.arange(4),
            },
        )
        out, _ = operators.sort(t, "key", descending=True)
        np.testing.assert_array_equal(out["pos"], [0, 2, 1, 3])

    def test_limit_truncates(self, fact):
        out, stats = operators.limit(fact, 2)
        assert out.num_rows == 2
        assert stats.tuples_out == 2

    def test_limit_beyond_size(self, fact):
        out, _ = operators.limit(fact, 100)
        assert out.num_rows == 6

    def test_limit_negative(self, fact):
        with pytest.raises(QueryError, match="non-negative"):
            operators.limit(fact, -1)
