"""Tests for the catalog: tables, views, foreign keys."""

import pytest

from repro.columnstore.catalog import Catalog, ForeignKey
from repro.columnstore.expressions import col_eq
from repro.columnstore.query import Query
from repro.columnstore.table import Table
from repro.errors import SchemaError, UnknownTableError


@pytest.fixture
def catalog() -> Catalog:
    c = Catalog()
    c.add_table(Table("fact", {"id": "int64", "fk": "int64"}))
    c.add_table(Table("dim", {"pk": "int64"}))
    return c


class TestTables:
    def test_add_and_lookup(self, catalog):
        assert catalog.table("fact").name == "fact"
        assert catalog.has_table("dim")
        assert set(catalog.table_names) == {"fact", "dim"}

    def test_duplicate_rejected(self, catalog):
        with pytest.raises(SchemaError, match="already has"):
            catalog.add_table(Table("fact", {"id": "int64"}))

    def test_unknown_table(self, catalog):
        with pytest.raises(UnknownTableError, match="ghost"):
            catalog.table("ghost")

    def test_drop_table_removes_dependent_fks(self, catalog):
        catalog.add_foreign_key(ForeignKey("fact", "fk", "dim", "pk"))
        catalog.drop_table("dim")
        assert catalog.foreign_keys == []
        assert not catalog.has_table("dim")

    def test_drop_unknown_table(self, catalog):
        with pytest.raises(UnknownTableError):
            catalog.drop_table("ghost")


class TestViews:
    def test_add_and_lookup(self, catalog):
        catalog.add_view("v", Query(table="fact", predicate=col_eq("id", 1)))
        assert catalog.has_view("v")
        assert catalog.view("v").table == "fact"
        assert catalog.view_names == ["v"]

    def test_view_name_collision_with_table(self, catalog):
        with pytest.raises(SchemaError, match="already has"):
            catalog.add_view("fact", Query(table="dim"))

    def test_view_over_unknown_table(self, catalog):
        with pytest.raises(UnknownTableError):
            catalog.add_view("v", Query(table="ghost"))

    def test_unknown_view(self, catalog):
        with pytest.raises(UnknownTableError):
            catalog.view("ghost")


class TestForeignKeys:
    def test_add_and_query(self, catalog):
        fk = ForeignKey("fact", "fk", "dim", "pk")
        catalog.add_foreign_key(fk)
        assert catalog.foreign_keys_of("fact") == [fk]
        assert catalog.foreign_keys_of("dim") == []

    def test_missing_column_rejected(self, catalog):
        with pytest.raises(SchemaError, match="missing column"):
            catalog.add_foreign_key(ForeignKey("fact", "nope", "dim", "pk"))

    def test_missing_table_rejected(self, catalog):
        with pytest.raises(UnknownTableError):
            catalog.add_foreign_key(ForeignKey("ghost", "x", "dim", "pk"))

    def test_str_rendering(self):
        fk = ForeignKey("fact", "fk", "dim", "pk")
        assert str(fk) == "fact.fk -> dim.pk"


class TestSummary:
    def test_summary_mentions_everything(self, catalog):
        catalog.add_view("v", Query(table="fact"))
        catalog.add_foreign_key(ForeignKey("fact", "fk", "dim", "pk"))
        text = catalog.summary()
        assert "fact" in text and "view v" in text and "fk fact.fk" in text
