"""Tests for the load pipeline and its observer hooks."""

import numpy as np
import pytest

from repro.columnstore.catalog import Catalog
from repro.columnstore.loader import Loader, LoadObserver
from repro.columnstore.table import Table
from repro.errors import LoadError


class RecordingObserver(LoadObserver):
    """Captures every (table, start_row, count) notification."""

    def __init__(self):
        self.calls = []

    def on_batch(self, table_name, start_row, batch):
        count = next(iter(batch.values())).shape[0]
        self.calls.append((table_name, start_row, count))


@pytest.fixture
def loader() -> Loader:
    catalog = Catalog()
    catalog.add_table(Table("t", {"a": "int64", "b": "float64"}))
    return Loader(catalog)


class TestLoadBatch:
    def test_appends_and_counts(self, loader):
        count = loader.load_batch("t", {"a": [1, 2], "b": [0.1, 0.2]})
        assert count == 2
        assert loader.catalog.table("t").num_rows == 2
        assert loader.rows_loaded("t") == 2

    def test_observer_sees_start_row(self, loader):
        observer = RecordingObserver()
        loader.register("t", observer)
        loader.load_batch("t", {"a": [1], "b": [0.1]})
        loader.load_batch("t", {"a": [2, 3], "b": [0.2, 0.3]})
        assert observer.calls == [("t", 0, 1), ("t", 1, 2)]

    def test_observer_only_notified_for_its_table(self, loader):
        loader.catalog.add_table(Table("u", {"a": "int64"}))
        observer = RecordingObserver()
        loader.register("t", observer)
        loader.load_batch("u", {"a": [1]})
        assert observer.calls == []

    def test_multiple_observers_all_notified(self, loader):
        first, second = RecordingObserver(), RecordingObserver()
        loader.register("t", first)
        loader.register("t", second)
        loader.load_batch("t", {"a": [1], "b": [0.1]})
        assert first.calls == second.calls == [("t", 0, 1)]


class TestLoadRows:
    def test_row_stream_batches(self, loader):
        observer = RecordingObserver()
        loader.register("t", observer)
        rows = ({"a": i, "b": float(i)} for i in range(10))
        total = loader.load_rows("t", rows, batch_size=4)
        assert total == 10
        assert [c[2] for c in observer.calls] == [4, 4, 2]
        np.testing.assert_array_equal(
            loader.catalog.table("t")["a"], np.arange(10)
        )

    def test_empty_stream(self, loader):
        assert loader.load_rows("t", iter(())) == 0

    def test_invalid_batch_size(self, loader):
        with pytest.raises(LoadError, match="positive"):
            loader.load_rows("t", [{"a": 1, "b": 1.0}], batch_size=0)


class TestRegistry:
    def test_register_rejects_non_observer(self, loader):
        with pytest.raises(TypeError, match="LoadObserver"):
            loader.register("t", object())

    def test_unregister(self, loader):
        observer = RecordingObserver()
        loader.register("t", observer)
        loader.unregister("t", observer)
        loader.load_batch("t", {"a": [1], "b": [0.1]})
        assert observer.calls == []

    def test_unregister_unknown_raises(self, loader):
        with pytest.raises(LoadError, match="not registered"):
            loader.unregister("t", RecordingObserver())

    def test_observers_of_returns_copy(self, loader):
        observer = RecordingObserver()
        loader.register("t", observer)
        listed = loader.observers_of("t")
        listed.clear()
        assert loader.observers_of("t") == [observer]
