"""Tests for equi-depth histograms (ref [18])."""

import numpy as np
import pytest

from repro.stats.equidepth import EquiDepthHistogram


class TestConstruction:
    def test_bins_roughly_equal_depth(self, rng):
        values = rng.normal(0, 1, 10_000)
        hist = EquiDepthHistogram(values, 20)
        assert hist.counts.sum() == 10_000
        np.testing.assert_allclose(hist.counts, hist.depth, rtol=0.05)

    def test_handles_skew_better_than_fixed_width(self, rng):
        values = np.concatenate([rng.normal(0, 0.01, 9_000), rng.uniform(0, 100, 1_000)])
        hist = EquiDepthHistogram(values, 10)
        # no bin should be nearly empty: that's the point of equi-depth
        assert hist.counts.min() > 0.3 * hist.depth

    def test_caps_bins_at_distinct_rows(self):
        hist = EquiDepthHistogram(np.array([1.0, 2.0]), 10)
        assert hist.bins == 2

    def test_empty_input_rejected(self):
        with pytest.raises(ValueError, match="nothing"):
            EquiDepthHistogram(np.array([]), 4)

    def test_edges_monotone(self, rng):
        hist = EquiDepthHistogram(rng.exponential(2, 1000), 16)
        assert (np.diff(hist.edges) >= 0).all()


class TestSelectivity:
    def test_full_range_is_one(self, rng):
        values = rng.normal(0, 1, 2000)
        hist = EquiDepthHistogram(values, 16)
        assert hist.selectivity(values.min(), values.max()) == pytest.approx(
            1.0, abs=0.02
        )

    def test_matches_true_fraction(self, rng):
        values = rng.normal(0, 1, 20_000)
        hist = EquiDepthHistogram(values, 32)
        true_fraction = ((values >= -1) & (values <= 1)).mean()
        assert hist.selectivity(-1, 1) == pytest.approx(true_fraction, abs=0.03)

    def test_inverted_bounds_normalised(self, rng):
        hist = EquiDepthHistogram(rng.normal(0, 1, 1000), 8)
        assert hist.selectivity(1, -1) == hist.selectivity(-1, 1)

    def test_disjoint_range_is_zero(self, rng):
        hist = EquiDepthHistogram(rng.uniform(0, 1, 1000), 8)
        assert hist.selectivity(5, 6) == 0.0

    def test_duplicate_heavy_data(self):
        values = np.concatenate([np.zeros(900), np.ones(100)])
        hist = EquiDepthHistogram(values, 10)
        assert hist.selectivity(-0.5, 0.5) == pytest.approx(0.9, abs=0.1)


class TestQuantile:
    def test_median_of_symmetric_data(self, rng):
        values = rng.normal(5, 1, 10_000)
        hist = EquiDepthHistogram(values, 32)
        assert hist.quantile(0.5) == pytest.approx(np.median(values), abs=0.1)

    def test_bounds(self, rng):
        values = rng.uniform(0, 1, 1000)
        hist = EquiDepthHistogram(values, 8)
        assert hist.quantile(0.0) == pytest.approx(values.min(), abs=1e-9)
        assert hist.quantile(1.0) == pytest.approx(values.max(), abs=1e-9)

    def test_invalid_quantile(self, rng):
        hist = EquiDepthHistogram(rng.uniform(0, 1, 100), 4)
        with pytest.raises(ValueError, match="quantile"):
            hist.quantile(1.5)
