"""Tests for construction policies and the hierarchy factory."""

import numpy as np
import pytest

from repro.core.policy import (
    BiasedPolicy,
    LastSeenPolicy,
    UniformPolicy,
    build_hierarchy,
)
from repro.errors import ImpressionError
from repro.sampling.biased import BiasedReservoir
from repro.sampling.last_seen import LastSeenReservoir
from repro.sampling.reservoir import ReservoirR
from repro.workload.interest import InterestModel


@pytest.fixture
def interest() -> InterestModel:
    model = InterestModel({"x": (0.0, 100.0)}, bins=10)
    model.observe_values("x", np.full(50, 20.0))
    return model


class TestPolicies:
    def test_uniform_makes_reservoir_r(self):
        sampler = UniformPolicy().make_sampler(10, rng=0)
        assert isinstance(sampler, ReservoirR)
        assert sampler.capacity == 10

    def test_biased_shares_interest_model(self, interest):
        policy = BiasedPolicy(interest, layer_sizes=(100, 10))
        a = policy.make_sampler(100, rng=0)
        b = policy.make_sampler(10, rng=1)
        assert isinstance(a, BiasedReservoir)
        assert a.mass_fn == b.mass_fn == interest.mass

    def test_last_seen_keep_ratio(self):
        policy = LastSeenPolicy(daily_ingest=1000, keep_ratio=0.5)
        sampler = policy.make_sampler(100, rng=0)
        assert isinstance(sampler, LastSeenReservoir)
        assert sampler.keep == 50

    def test_last_seen_validation(self):
        with pytest.raises(ImpressionError):
            LastSeenPolicy(daily_ingest=0)
        with pytest.raises(ImpressionError):
            LastSeenPolicy(daily_ingest=10, keep_ratio=0.0)

    def test_policy_kinds(self, interest):
        assert UniformPolicy().kind == "uniform"
        assert BiasedPolicy(interest).kind == "biased"
        assert LastSeenPolicy(10).kind == "last-seen"


class TestBuildHierarchy:
    def test_layer_names_and_sizes(self):
        hierarchy = build_hierarchy(
            "t", UniformPolicy(layer_sizes=(100, 10)), rng=0
        )
        assert hierarchy.name == "t/uniform"
        assert [l.capacity for l in hierarchy.layers] == [100, 10]
        assert hierarchy.layers[0].name == "t/uniform/L0"

    def test_custom_name(self):
        hierarchy = build_hierarchy(
            "t", UniformPolicy(layer_sizes=(10,)), name="mine", rng=0
        )
        assert hierarchy.name == "mine"

    def test_layers_get_independent_rngs(self):
        hierarchy = build_hierarchy(
            "t", UniformPolicy(layer_sizes=(100, 50)), rng=7
        )
        for layer in hierarchy.layers:
            layer.sampler.offer_batch(np.arange(1000))
        a, b = (set(l.row_ids.tolist()) for l in hierarchy.layers)
        assert a != b  # independent streams produce different samples

    def test_column_subset_propagates(self):
        hierarchy = build_hierarchy(
            "t", UniformPolicy(layer_sizes=(10,)), columns=("x",), rng=0
        )
        assert hierarchy.layers[0].columns == ("x",)

    def test_size_validation(self):
        with pytest.raises(ImpressionError, match="strictly decrease"):
            build_hierarchy("t", UniformPolicy(layer_sizes=(10, 10)))
        with pytest.raises(ImpressionError, match="positive"):
            build_hierarchy("t", UniformPolicy(layer_sizes=(10, 0)))
        with pytest.raises(ImpressionError, match="at least one"):
            build_hierarchy("t", UniformPolicy(layer_sizes=()))
