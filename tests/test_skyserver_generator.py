"""Tests for the synthetic sky generator."""

import numpy as np
import pytest

from repro.columnstore.loader import Loader
from repro.skyserver.generator import (
    DEFAULT_PATCHES,
    SkyGenerator,
    SkyPatch,
    build_skyserver,
)
from repro.skyserver.schema import DEC_RANGE, GALAXY, RA_RANGE, STAR, create_skyserver_catalog


class TestSkyPatch:
    def test_validation(self):
        with pytest.raises(ValueError):
            SkyPatch(150, 10, sigma_ra=0, sigma_dec=1, weight=1)
        with pytest.raises(ValueError):
            SkyPatch(150, 10, sigma_ra=1, sigma_dec=1, weight=0)


class TestPhotoObjBatches:
    def test_batch_covers_schema(self):
        gen = SkyGenerator(rng=0)
        batch = gen.photoobj_batch(100)
        from repro.skyserver.schema import photoobj_schema

        assert set(batch) == set(photoobj_schema())
        assert all(np.asarray(v).shape[0] == 100 for v in batch.values())

    def test_obj_ids_are_sequential_across_batches(self):
        gen = SkyGenerator(rng=1)
        first = gen.photoobj_batch(50)
        second = gen.photoobj_batch(50)
        np.testing.assert_array_equal(first["objID"], np.arange(50))
        np.testing.assert_array_equal(second["objID"], np.arange(50, 100))

    def test_positions_inside_survey_window(self):
        gen = SkyGenerator(rng=2)
        batch = gen.photoobj_batch(5000)
        assert (batch["ra"] >= RA_RANGE[0]).all() and (batch["ra"] <= RA_RANGE[1]).all()
        assert (batch["dec"] >= DEC_RANGE[0]).all() and (batch["dec"] <= DEC_RANGE[1]).all()

    def test_patches_create_overdensities(self):
        gen = SkyGenerator(rng=3)
        batch = gen.photoobj_batch(50_000)
        patch = DEFAULT_PATCHES[0]
        near = (
            (np.abs(batch["ra"] - patch.ra) < 2 * patch.sigma_ra)
            & (np.abs(batch["dec"] - patch.dec) < 2 * patch.sigma_dec)
        ).mean()
        window_area = (RA_RANGE[1] - RA_RANGE[0]) * (DEC_RANGE[1] - DEC_RANGE[0])
        patch_area = (4 * patch.sigma_ra) * (4 * patch.sigma_dec)
        uniform_share = patch_area / window_area
        assert near > 3 * uniform_share

    def test_mjd_strictly_increasing_with_objid(self):
        gen = SkyGenerator(rng=4)
        batch = gen.photoobj_batch(100)
        assert (np.diff(batch["mjd"]) > 0).all()

    def test_types_are_galaxy_or_star(self):
        gen = SkyGenerator(rng=5)
        batch = gen.photoobj_batch(1000)
        assert set(np.unique(batch["obj_type"])) <= {GALAXY, STAR}

    def test_magnitudes_ordered_by_colour(self):
        gen = SkyGenerator(rng=6)
        batch = gen.photoobj_batch(2000)
        # redder bands are brighter on average in this synthetic sky
        assert batch["u_mag"].mean() > batch["r_mag"].mean() > batch["z_mag"].mean()

    def test_field_assignment_is_spatial(self):
        gen = SkyGenerator(rng=7)
        batch = gen.photoobj_batch(1000)
        same_position = gen._field_of(batch["ra"], batch["dec"])
        np.testing.assert_array_equal(batch["fieldID"], same_position)

    def test_count_validation(self):
        with pytest.raises(ValueError):
            SkyGenerator(rng=0).photoobj_batch(0)


class TestDimensions:
    def test_field_table_size(self):
        gen = SkyGenerator(fields=64, rng=8)
        table = gen.field_table()
        assert table["fieldID"].shape[0] == 64

    def test_photoz_aligns_with_objids(self):
        gen = SkyGenerator(rng=9)
        batch = gen.photoobj_batch(10)
        pz = gen.photoz_batch(batch["objID"])
        np.testing.assert_array_equal(pz["pz_objID"], batch["objID"])
        assert (pz["z_est"] >= 0).all()


class TestBuildSkyserver:
    def test_populates_everything(self):
        catalog, loader, gen = build_skyserver(10_000, batch_size=3000, rng=10)
        assert catalog.table("PhotoObjAll").num_rows == 10_000
        assert catalog.table("Photoz").num_rows == 10_000
        assert catalog.table("Field").num_rows > 0

    def test_streams_through_given_loader(self):
        from repro.columnstore.loader import LoadObserver

        class Counter(LoadObserver):
            seen = 0

            def on_batch(self, table_name, start_row, batch):
                Counter.seen += next(iter(batch.values())).shape[0]

        loader = Loader(create_skyserver_catalog())
        loader.register("PhotoObjAll", Counter())
        build_skyserver(5000, batch_size=1000, loader=loader, rng=11)
        assert Counter.seen == 5000

    def test_incremental_followup_ingest(self):
        catalog, loader, gen = build_skyserver(5000, rng=12)
        batch = gen.photoobj_batch(1000)
        loader.load_batch("PhotoObjAll", batch)
        assert catalog.table("PhotoObjAll").num_rows == 6000
        # obj ids continue the sequence
        assert batch["objID"][0] == 5000
