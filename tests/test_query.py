"""Tests for declarative Query objects."""

import pytest

from repro.columnstore.expressions import Between, RadialPredicate
from repro.columnstore.query import AggregateSpec, JoinSpec, Query
from repro.errors import QueryError


class TestAggregateSpec:
    def test_count_star(self):
        spec = AggregateSpec("count")
        assert spec.output_name == "count(*)"

    def test_alias_overrides_name(self):
        assert AggregateSpec("avg", "x", alias="mean_x").output_name == "mean_x"

    def test_unknown_function(self):
        with pytest.raises(QueryError, match="unknown aggregate"):
            AggregateSpec("median", "x")

    def test_non_count_requires_column(self):
        with pytest.raises(QueryError, match="requires a column"):
            AggregateSpec("sum")


class TestJoinSpec:
    def test_requires_table(self):
        with pytest.raises(QueryError, match="right table"):
            JoinSpec("", "a", "b")


class TestQuery:
    def test_requires_table(self):
        with pytest.raises(QueryError, match="table name"):
            Query(table="")

    def test_negative_limit(self):
        with pytest.raises(QueryError, match="non-negative"):
            Query(table="t", limit=-1)

    def test_group_by_needs_aggregates(self):
        with pytest.raises(QueryError, match="group_by requires"):
            Query(table="t", group_by=["g"])

    def test_is_aggregate(self):
        assert Query(table="t", aggregates=[AggregateSpec("count")]).is_aggregate
        assert not Query(table="t").is_aggregate

    def test_requested_values_delegates_to_predicate(self):
        q = Query(table="t", predicate=RadialPredicate("ra", "dec", 185, 0, 3))
        assert q.requested_values() == {"ra": [185.0], "dec": [0.0]}

    def test_columns_read_covers_all_clauses(self):
        q = Query(
            table="t",
            predicate=Between("x", 0, 1),
            select=("a",),
            aggregates=(),
            joins=(JoinSpec("d", "fk", "pk"),),
            order_by="o",
        )
        assert q.columns_read() == {"x", "a", "fk", "o"}

    def test_columns_read_includes_aggregate_columns(self):
        q = Query(
            table="t",
            aggregates=[AggregateSpec("avg", "v")],
            group_by=("g",),
        )
        assert {"v", "g"} <= q.columns_read()

    def test_fingerprint_distinguishes_clauses(self):
        base = Query(table="t", predicate=Between("x", 0, 1))
        limited = Query(table="t", predicate=Between("x", 0, 1), limit=10)
        assert base.fingerprint() != limited.fingerprint()

    def test_fingerprint_stable_for_equal_queries(self):
        a = Query(table="t", predicate=Between("x", 0, 1), limit=10)
        b = Query(table="t", predicate=Between("x", 0, 1), limit=10)
        assert a.fingerprint() == b.fingerprint()


class TestQueryImmutability:
    """Queries are frozen and hashable: safe dict/set keys for the
    recycler, the query log, and the handle registry."""

    def test_queries_are_frozen(self):
        q = Query(table="t")
        with pytest.raises(Exception):  # dataclasses.FrozenInstanceError
            q.table = "other"
        with pytest.raises(Exception):
            q.limit = 5

    def test_sequence_clauses_normalised_to_tuples(self):
        q = Query(
            table="t",
            select=["a", "b"],
            aggregates=[AggregateSpec("count")],
            group_by=["a"],
            joins=[JoinSpec("d", "fk", "pk")],
        )
        assert isinstance(q.select, tuple)
        assert isinstance(q.aggregates, tuple)
        assert isinstance(q.group_by, tuple)
        assert isinstance(q.joins, tuple)

    def test_queries_are_hashable_dict_keys(self):
        predicate = Between("x", 0, 1)
        a = Query(table="t", predicate=predicate, limit=10)
        b = Query(table="t", predicate=predicate, limit=10)
        registry = {a: "first"}
        # same clauses (and same predicate object) → same key
        assert registry[b] == "first"
        assert a == b and hash(a) == hash(b)
        assert len({a, b}) == 1

    def test_distinct_clauses_are_distinct_keys(self):
        predicate = Between("x", 0, 1)
        a = Query(table="t", predicate=predicate)
        b = Query(table="t", predicate=predicate, limit=10)
        assert a != b
        assert len({a, b}) == 2

    def test_list_built_queries_hash_like_tuple_built(self):
        # normalisation makes construction-spelling irrelevant
        predicate = Between("x", 0, 1)
        a = Query(
            table="t",
            predicate=predicate,
            aggregates=[AggregateSpec("count")],
            group_by=["g"],
        )
        b = Query(
            table="t",
            predicate=predicate,
            aggregates=(AggregateSpec("count"),),
            group_by=("g",),
        )
        assert a == b and hash(a) == hash(b)
