"""Tests for bandwidth selectors."""

import numpy as np
import pytest

from repro.stats.bandwidth import (
    least_squares_cv_bandwidth,
    oversmoothed_bandwidth,
    scott_bandwidth,
    silverman_bandwidth,
    undersmoothed_bandwidth,
)


class TestReferenceRules:
    def test_silverman_formula(self, rng):
        values = rng.normal(0, 2, 400)
        h = silverman_bandwidth(values)
        spread = min(values.std(ddof=1), np.subtract(*np.percentile(values, [75, 25])) / 1.34)
        assert h == pytest.approx(0.9 * spread * 400 ** (-0.2))

    def test_scott_larger_than_silverman_for_normal_data(self, rng):
        values = rng.normal(0, 1, 500)
        assert scott_bandwidth(values) > silverman_bandwidth(values)

    def test_shrinks_with_sample_size(self, rng):
        small = rng.normal(0, 1, 50)
        large = rng.normal(0, 1, 5000)
        assert silverman_bandwidth(large) < silverman_bandwidth(small)

    def test_constant_sample_fallback(self):
        h = silverman_bandwidth(np.full(10, 3.0))
        assert h > 0

    def test_empty_sample_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            silverman_bandwidth(np.array([]))


class TestFigure4Panels:
    def test_over_and_under_bracket_the_reference(self, rng):
        values = rng.normal(0, 1, 300)
        h = silverman_bandwidth(values)
        assert oversmoothed_bandwidth(values) == pytest.approx(8 * h)
        assert undersmoothed_bandwidth(values) == pytest.approx(h / 8)

    def test_custom_factors(self, rng):
        values = rng.normal(0, 1, 300)
        assert oversmoothed_bandwidth(values, 2.0) == pytest.approx(
            2 * silverman_bandwidth(values)
        )

    def test_invalid_factor(self, rng):
        with pytest.raises(ValueError, match="factor"):
            oversmoothed_bandwidth(rng.normal(0, 1, 10), 0.0)


class TestLSCV:
    def test_picks_reasonable_bandwidth(self, rng):
        values = rng.normal(0, 1, 200)
        h = least_squares_cv_bandwidth(values)
        reference = silverman_bandwidth(values)
        assert reference / 10 < h < reference * 10

    def test_prefers_reference_over_extremes(self, rng):
        values = np.concatenate([rng.normal(-3, 0.5, 150), rng.normal(3, 0.5, 150)])
        reference = silverman_bandwidth(values)
        candidates = np.array([reference / 8, reference, reference * 8])
        h = least_squares_cv_bandwidth(values, candidates)
        assert h != pytest.approx(reference * 8)  # oversmoothing merges modes

    def test_needs_three_points(self):
        with pytest.raises(ValueError, match="at least 3"):
            least_squares_cv_bandwidth(np.array([1.0, 2.0]))
