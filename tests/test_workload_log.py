"""Tests for the query log."""

import pytest

from repro.columnstore.expressions import Between
from repro.columnstore.query import Query
from repro.workload.log import QueryLog, QueryLogEntry, QueryOutcome


def make_query(lo: float) -> Query:
    return Query(table="t", predicate=Between("x", lo, lo + 1))


class TestRecording:
    def test_sequence_numbers_monotone(self):
        log = QueryLog()
        entries = [log.record(make_query(i)) for i in range(5)]
        assert [e.sequence for e in entries] == list(range(5))
        assert len(log) == log.total_recorded == 5

    def test_iteration_order(self):
        log = QueryLog()
        for i in range(3):
            log.record(make_query(i))
        assert [e.sequence for e in log] == [0, 1, 2]

    def test_fingerprint_exposed(self):
        log = QueryLog()
        entry = log.record(make_query(1))
        assert entry.fingerprint == make_query(1).fingerprint()


class TestWindowing:
    def test_max_entries_truncates_oldest(self):
        log = QueryLog(max_entries=3)
        for i in range(6):
            log.record(make_query(i))
        assert len(log) == 3
        assert [e.sequence for e in log] == [3, 4, 5]
        assert log.total_recorded == 6

    def test_invalid_max_entries(self):
        with pytest.raises(ValueError, match="positive"):
            QueryLog(max_entries=0)


class TestQueries:
    def test_tail(self):
        log = QueryLog()
        for i in range(5):
            log.record(make_query(i))
        assert [e.sequence for e in log.tail(2)] == [3, 4]
        assert log.tail(0) == ()

    def test_tail_negative(self):
        with pytest.raises(ValueError, match="non-negative"):
            QueryLog().tail(-1)

    def test_since(self):
        log = QueryLog()
        for i in range(5):
            log.record(make_query(i))
        assert [e.sequence for e in log.since(3)] == [3, 4]

    def test_most_common_fingerprints(self):
        log = QueryLog()
        for _ in range(3):
            log.record(make_query(1))
        log.record(make_query(2))
        (top_fp, top_count), *_ = log.most_common_fingerprints(2)
        assert top_count == 3
        assert top_fp == make_query(1).fingerprint()


def make_outcome(**overrides) -> QueryOutcome:
    fields = dict(
        tuples_charged=120.0,
        rungs_climbed=2,
        achieved_error=0.03,
        wall_seconds=0.5,
        session_id=7,
        degraded=False,
    )
    fields.update(overrides)
    return QueryOutcome(**fields)


class TestOutcomes:
    def test_two_field_construction_still_works(self):
        entry = QueryLogEntry(0, make_query(1))
        assert entry.outcome is None
        assert not entry.settled

    def test_settle_attaches_outcome(self):
        log = QueryLog()
        entry = log.record(make_query(1))
        assert not entry.settled
        settled = log.settle(entry.sequence, make_outcome())
        assert settled is not None and settled.settled
        assert settled.outcome.tuples_charged == 120.0
        assert settled.outcome.session_id == 7
        # the stored entry is the settled one
        (stored,) = log.snapshot()
        assert stored.settled

    def test_first_settle_wins(self):
        log = QueryLog()
        entry = log.record(make_query(1))
        log.settle(entry.sequence, make_outcome(rungs_climbed=1))
        again = log.settle(entry.sequence, make_outcome(rungs_climbed=9))
        assert again.outcome.rungs_climbed == 1

    def test_settle_tolerates_window_eviction(self):
        log = QueryLog(max_entries=2)
        first = log.record(make_query(0))
        for i in range(1, 4):
            log.record(make_query(i))
        assert log.settle(first.sequence, make_outcome()) is None
        # surviving entries still settle by absolute sequence number
        assert log.settle(3, make_outcome()) is not None

    def test_settle_unknown_sequence(self):
        log = QueryLog()
        log.record(make_query(0))
        assert log.settle(99, make_outcome()) is None
