"""Tests for the Last Seen impression (paper Figure 3)."""

import numpy as np
import pytest

from repro.errors import SamplingError
from repro.sampling.last_seen import LastSeenReservoir


def run_days(sampler: LastSeenReservoir, days: int, daily: int) -> None:
    for day in range(days):
        sampler.offer_batch(np.arange(day * daily, (day + 1) * daily))


class TestConfiguration:
    def test_defaults_keep_equals_capacity(self):
        s = LastSeenReservoir(100, daily_ingest=1000)
        assert s.keep == 100
        assert s.acceptance_rate == pytest.approx(0.1)

    def test_acceptance_rate_capped_at_one(self):
        s = LastSeenReservoir(100, daily_ingest=50)
        assert s.acceptance_rate == 1.0

    def test_invalid_daily_ingest(self):
        with pytest.raises(SamplingError, match="daily_ingest"):
            LastSeenReservoir(10, daily_ingest=0)

    def test_invalid_keep(self):
        with pytest.raises(SamplingError, match="keep"):
            LastSeenReservoir(10, daily_ingest=100, keep=11)
        with pytest.raises(SamplingError, match="keep"):
            LastSeenReservoir(10, daily_ingest=100, keep=0)


class TestRecencyBias:
    def test_recent_fraction_matches_closed_form(self):
        s = LastSeenReservoir(1000, daily_ingest=10_000, rng=11)
        run_days(s, 10, 10_000)
        recent = (s.row_ids >= 90_000).mean()
        expected = s.expected_recent_fraction()
        assert recent == pytest.approx(expected, abs=0.06)

    def test_more_recency_than_algorithm_r(self):
        from repro.sampling.reservoir import ReservoirR

        last_seen = LastSeenReservoir(500, daily_ingest=5_000, rng=12)
        uniform = ReservoirR(500, rng=13)
        for day in range(10):
            ids = np.arange(day * 5_000, (day + 1) * 5_000)
            last_seen.offer_batch(ids)
            uniform.offer_batch(ids)
        recent_ls = (last_seen.row_ids >= 45_000).mean()
        recent_r = (uniform.row_ids >= 45_000).mean()
        assert recent_ls > 3 * recent_r  # ~0.63 vs ~0.10

    def test_keep_ratio_halves_recent_fraction(self):
        full = LastSeenReservoir(1000, daily_ingest=10_000, keep=1000, rng=14)
        half = LastSeenReservoir(1000, daily_ingest=10_000, keep=500, rng=15)
        run_days(full, 8, 10_000)
        run_days(half, 8, 10_000)
        recent_full = (full.row_ids >= 70_000).mean()
        recent_half = (half.row_ids >= 70_000).mean()
        assert recent_half < recent_full
        assert recent_half == pytest.approx(
            half.expected_recent_fraction(), abs=0.06
        )

    def test_age_distribution_is_geometric_ish(self):
        """Older ingests occupy geometrically fewer slots."""
        s = LastSeenReservoir(2000, daily_ingest=10_000, rng=16)
        run_days(s, 6, 10_000)
        per_day = np.bincount(s.row_ids // 10_000, minlength=6)
        # strictly more slots for newer days (allowing small noise)
        assert per_day[5] > per_day[3] > per_day[1]


class TestExpectedRecentFraction:
    def test_window_default_is_daily_ingest(self):
        s = LastSeenReservoir(100, daily_ingest=1000)
        assert s.expected_recent_fraction() == s.expected_recent_fraction(1000)

    def test_monotone_in_window(self):
        s = LastSeenReservoir(100, daily_ingest=1000)
        assert s.expected_recent_fraction(2000) > s.expected_recent_fraction(500)

    def test_capped_at_one(self):
        s = LastSeenReservoir(10, daily_ingest=10)
        assert s.expected_recent_fraction(10_000) == 1.0
