"""Integration tests: full paper scenarios end to end.

These exercise the same pipelines the benchmarks print, and pin the
*shape* claims of the paper's evaluation (DESIGN.md §3): Figure 4's
curve relationships and Figure 7's focal-representation win.
"""

import numpy as np
import pytest

from repro.bench.harness import (
    build_experiment_context,
    figure4_series,
    figure7_series,
    sample_values,
)
from repro.columnstore import AggregateSpec, Query
from repro.columnstore.expressions import RadialPredicate
from repro.skyserver.schema import RA_RANGE
from repro.skyserver.workload_gen import FocalPoint


@pytest.fixture(scope="module")
def context():
    """A shared uniform-policy experiment context (module-scoped)."""
    return build_experiment_context(
        n_objects=80_000, policy="uniform", layer_sizes=(8_000, 800), rng=77
    )


class TestFigure4Shape:
    @pytest.fixture(scope="class")
    def series(self):
        ctx = build_experiment_context(n_objects=1, rng=42)  # data unused
        values = ctx.workload.predicate_set(500)["ra"]
        return figure4_series(values, RA_RANGE, bins=30)

    def test_fbreve_tracks_fhat(self, series):
        """'almost identical with the estimation from f̂' (paper §4)."""
        scale = series["f_hat"].max()
        mad = np.abs(series["f_hat"] - series["f_breve"]).mean()
        assert mad < 0.15 * scale
        # and f̆ is far closer to f̂ than the deliberately bad bandwidths
        mad_over = np.abs(series["f_hat"] - series["oversmoothed"]).mean()
        mad_under = np.abs(series["f_hat"] - series["undersmoothed"]).mean()
        assert mad < min(mad_over, mad_under)

    def test_oversmoothed_flattens_the_modes(self, series):
        assert series["oversmoothed"].max() < 0.6 * series["f_hat"].max()

    def test_undersmoothed_is_spikier(self, series):
        assert series["undersmoothed"].max() > 1.2 * series["f_hat"].max()

    def test_histogram_mass_equals_predicate_set(self, series):
        assert series["hist_counts"].sum() == series["n_predicates"][0]

    def test_density_modes_near_default_focal_points(self, series):
        grid = series["grid"]
        f = series["f_breve"]
        # the two default focal points are at ra 150 and 205
        for focal_ra in (150.0, 205.0):
            window = (grid > focal_ra - 15) & (grid < focal_ra + 15)
            assert f[window].max() > 2 * np.median(f)


class TestFigure7Shape:
    @pytest.fixture(scope="class")
    def panels(self):
        """Base vs uniform vs biased impressions, as the figure builds
        them: interest from a 400-query workload, n = 6 000 samples of
        a 120 000-tuple base."""
        ctx = build_experiment_context(
            n_objects=120_000,
            policy="uniform",
            layer_sizes=(6_000, 600),
            warmup_queries=400,
            rng=7,
        )
        engine = ctx.engine
        base_ra = engine.catalog.table("PhotoObjAll")["ra"].copy()
        uniform_ra = sample_values(engine, "PhotoObjAll", 0, "ra")
        engine.create_hierarchy(
            "PhotoObjAll", policy="biased", layer_sizes=(6_000, 600)
        )
        engine.rebuild("PhotoObjAll")
        biased_ra = sample_values(engine, "PhotoObjAll", 0, "ra")
        interest = engine.interest.interest_for("ra")
        centers = np.linspace(RA_RANGE[0], RA_RANGE[1], 30)
        focal_density = interest.kde.evaluate(centers)
        return figure7_series(
            base_ra,
            uniform_ra,
            biased_ra,
            RA_RANGE,
            bins=30,
            focal_density=focal_density,
        )

    def test_uniform_sample_matches_base_shape(self, panels):
        tv = 0.5 * np.abs(
            panels["uniform_proportions"] - panels["base_proportions"]
        ).sum()
        assert tv < 0.07

    def test_biased_sample_overrepresents_focal_bins(self, panels):
        """The paper's headline: 'The impression created with bias
        contains many more tuples from the areas of interest.'"""
        assert (
            panels["biased_focal_fraction"][0]
            > panels["uniform_focal_fraction"][0] + 0.1
        )

    def test_biased_beats_uniform_inside_focal_area(self, panels):
        """More focal tuples than the base's own share: resolution
        around the focal points improves."""
        assert panels["biased_focal_fraction"][0] > panels["base_focal_fraction"][0]

    def test_sample_sizes_preserved(self, panels):
        assert panels["uniform_counts"].sum() == 6_000
        assert panels["biased_counts"].sum() == 6_000


class TestEndToEndSession:
    def test_explore_escalate_ingest_drift_refocus(self, rng):
        """The full SciBORQ story in one session."""
        ctx = build_experiment_context(
            n_objects=60_000,
            policy="biased",
            layer_sizes=(6_000, 600),
            warmup_queries=300,
            rng=11,
        )
        engine = ctx.engine

        # 1. interactive exploration with an error bound
        q = Query(
            table="PhotoObjAll",
            predicate=RadialPredicate("ra", "dec", 150, 10, 4),
            aggregates=[AggregateSpec("count")],
        )
        outcome = engine.execute(q, max_relative_error=0.2)
        assert outcome.met_quality

        # 2. incremental ingest flows into the impressions
        seen_before = engine.hierarchy("PhotoObjAll").layer(0).sampler.seen
        engine.ingest("PhotoObjAll", ctx.generator.photoobj_batch(5_000))
        assert (
            engine.hierarchy("PhotoObjAll").layer(0).sampler.seen
            == seen_before + 5_000
        )

        # 3. the workload shifts; drift is detected and handled
        ctx.workload.shift([FocalPoint(230.0, 55.0, 2.0, 2.0)])
        for query in ctx.workload.queries(250):
            engine.collector.observe(query)
        reports = engine.maintain()
        assert "PhotoObjAll" in reports
        assert engine.planner.drift_events == 1

    def test_time_budget_controls_cost_monotonically(self, context):
        q = Query(
            table="PhotoObjAll",
            predicate=RadialPredicate("ra", "dec", 205, 40, 5),
            aggregates=[AggregateSpec("count")],
        )
        costs, errors = [], []
        for budget in (1_000, 20_000, 500_000):
            outcome = context.engine.execute(
                q, max_relative_error=0.0, time_budget=budget
            )
            costs.append(outcome.total_cost)
            errors.append(outcome.achieved_error)
        assert costs == sorted(costs)
        assert errors == sorted(errors, reverse=True)  # more budget, less error

    def test_join_query_through_bounded_path(self, context):
        from repro.columnstore import JoinSpec

        q = Query(
            table="PhotoObjAll",
            predicate=RadialPredicate("ra", "dec", 150, 10, 5),
            joins=[JoinSpec("Field", "fieldID", "fieldID", ("sky_brightness",))],
            aggregates=[AggregateSpec("avg", "sky_brightness")],
        )
        outcome = context.engine.execute(q, max_relative_error=0.05)
        exact = context.engine.execute_exact(q)
        assert outcome.result.estimates["avg(sky_brightness)"].value == pytest.approx(
            exact.scalar("avg(sky_brightness)"), rel=0.03
        )
