"""Tests for exact and binned KDE — the heart of paper §4."""

import numpy as np
import pytest
from scipy.integrate import trapezoid

from repro.stats.bandwidth import silverman_bandwidth
from repro.stats.histogram import PredicateHistogram
from repro.stats.kde import (
    BinnedKDE,
    EpanechnikovKernel,
    ExactKDE,
    GaussianKernel,
    mean_absolute_deviation,
)


@pytest.fixture
def bimodal_points(rng) -> np.ndarray:
    """A Figure-4-like predicate set: two focal clusters, N=400."""
    return np.concatenate(
        [rng.normal(150, 5, 200), rng.normal(205, 8, 200)]
    )


class TestKernels:
    def test_gaussian_integrates_to_one(self):
        u = np.linspace(-8, 8, 2001)
        assert trapezoid(GaussianKernel()(u), u) == pytest.approx(1.0, abs=1e-6)

    def test_epanechnikov_integrates_to_one(self):
        u = np.linspace(-1.5, 1.5, 2001)
        assert trapezoid(EpanechnikovKernel()(u), u) == pytest.approx(1.0, abs=1e-6)

    def test_epanechnikov_compact_support(self):
        kernel = EpanechnikovKernel()
        assert kernel(np.array([1.01, -2.0])).tolist() == [0.0, 0.0]

    def test_kernels_symmetric(self):
        u = np.array([0.3, 1.7])
        for kernel in (GaussianKernel(), EpanechnikovKernel()):
            np.testing.assert_allclose(kernel(u), kernel(-u))


class TestExactKDE:
    def test_integrates_to_one(self, bimodal_points):
        kde = ExactKDE(bimodal_points, silverman_bandwidth(bimodal_points))
        grid = np.linspace(100, 260, 2000)
        assert trapezoid(kde(grid), grid) == pytest.approx(1.0, abs=1e-3)

    def test_peaks_at_the_modes(self, bimodal_points):
        kde = ExactKDE(bimodal_points, silverman_bandwidth(bimodal_points))
        assert kde(150.0)[0] > kde(178.0)[0]
        assert kde(205.0)[0] > kde(178.0)[0]

    def test_scalar_and_array_evaluation_agree(self, bimodal_points):
        kde = ExactKDE(bimodal_points, 3.0)
        assert kde(150.0)[0] == pytest.approx(kde(np.array([150.0]))[0])

    def test_cost_is_N(self, bimodal_points):
        kde = ExactKDE(bimodal_points, 3.0)
        assert kde.evaluation_cost() == 400

    def test_rejects_empty_points(self):
        with pytest.raises(ValueError, match="non-empty"):
            ExactKDE(np.array([]), 1.0)

    def test_rejects_bad_bandwidth(self, bimodal_points):
        with pytest.raises(ValueError, match="bandwidth"):
            ExactKDE(bimodal_points, 0.0)


class TestBinnedKDE:
    def make_pair(self, points, bins=30):
        hist = PredicateHistogram(120, 240, bins)
        hist.observe_batch(points)
        return BinnedKDE(hist), hist

    def test_integrates_to_one(self, bimodal_points):
        f_breve, _ = self.make_pair(bimodal_points)
        grid = np.linspace(60, 300, 3000)
        assert trapezoid(f_breve(grid), grid) == pytest.approx(1.0, abs=1e-3)

    def test_close_to_exact_kde(self, bimodal_points):
        """The paper: 'almost identical with the estimation from f̂'."""
        f_breve, _ = self.make_pair(bimodal_points)
        f_hat = ExactKDE(bimodal_points, silverman_bandwidth(bimodal_points))
        grid = np.linspace(120, 240, 400)
        mad = mean_absolute_deviation(f_hat, f_breve, grid)
        scale = float(f_hat(grid).max())
        assert mad < 0.15 * scale

    def test_cost_independent_of_N(self, rng):
        small = rng.normal(180, 10, 50)
        large = rng.normal(180, 10, 5000)
        f_small, _ = self.make_pair(small)
        f_large, _ = self.make_pair(large)
        assert f_large.evaluation_cost() <= f_small.histogram.bins
        assert f_large.evaluation_cost() <= 30  # β, not N

    def test_bandwidth_equals_bin_width(self, bimodal_points):
        f_breve, hist = self.make_pair(bimodal_points)
        assert f_breve.bandwidth == hist.width

    def test_empty_histogram_evaluates_to_zero(self):
        hist = PredicateHistogram(0, 1, 4)
        f_breve = BinnedKDE(hist)
        np.testing.assert_array_equal(f_breve(np.array([0.5])), [0.0])

    def test_tracks_histogram_updates(self, rng):
        hist = PredicateHistogram(0, 100, 10)
        f_breve = BinnedKDE(hist)
        hist.observe_batch(rng.normal(20, 3, 100))
        before = f_breve(np.array([80.0]))[0]
        hist.observe_batch(rng.normal(80, 3, 300))
        after = f_breve(np.array([80.0]))[0]
        assert after > before

    def test_mass_higher_at_focal_points(self, bimodal_points):
        f_breve, hist = self.make_pair(bimodal_points)
        focal = f_breve(np.array([150.0]))[0] * hist.total
        distant = f_breve(np.array([178.0]))[0] * hist.total
        assert focal > 3 * distant

    def test_epanechnikov_kernel_usable(self, bimodal_points):
        hist = PredicateHistogram(120, 240, 30)
        hist.observe_batch(bimodal_points)
        f_breve = BinnedKDE(hist, EpanechnikovKernel())
        grid = np.linspace(120, 240, 1000)
        assert trapezoid(f_breve(grid), grid) == pytest.approx(1.0, abs=0.02)
