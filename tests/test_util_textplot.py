"""Tests for the ASCII rendering helpers."""

import numpy as np
import pytest

from repro.util.textplot import ascii_histogram, ascii_series, format_table


class TestAsciiHistogram:
    def test_scales_to_width(self):
        text = ascii_histogram([1, 2, 4], width=8)
        lines = text.splitlines()
        assert lines[-1].count("█") == 8  # tallest bin fills the width
        assert lines[0].count("█") == 2

    def test_labels_with_edges(self):
        text = ascii_histogram([5], edges=[0.0, 1.0])
        assert "[" in text and ")" in text

    def test_title_prepended(self):
        assert ascii_histogram([1], title="T").splitlines()[0] == "T"

    def test_all_zero_counts(self):
        text = ascii_histogram([0, 0])
        assert "█" not in text

    def test_rejects_2d(self):
        with pytest.raises(ValueError, match="one-dimensional"):
            ascii_histogram(np.zeros((2, 2)))


class TestAsciiSeries:
    def test_contains_points(self):
        text = ascii_series([0, 1, 2], [0, 1, 4])
        assert text.count("*") >= 3 - 1  # points may overlap cells

    def test_empty_series(self):
        assert "(empty series)" in ascii_series([], [])

    def test_mismatched_shapes_rejected(self):
        with pytest.raises(ValueError, match="same shape"):
            ascii_series([1, 2], [1])

    def test_constant_series_does_not_crash(self):
        text = ascii_series([1, 2, 3], [5, 5, 5])
        assert "*" in text


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["a", "bb"], [[1, 2], [333, 4]])
        lines = text.splitlines()
        assert len({line.index("|") for line in lines if "|" in line}) == 1

    def test_float_formatting(self):
        text = format_table(["v"], [[3.14159265]])
        assert "3.142" in text

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError, match="columns"):
            format_table(["a"], [[1, 2]])

    def test_header_only(self):
        text = format_table(["x", "y"], [])
        assert "x" in text and "y" in text
