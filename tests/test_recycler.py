"""Tests for the intermediate-result recycler."""

import numpy as np
import pytest

from repro.columnstore.expressions import Between
from repro.columnstore.recycler import Recycler
from repro.columnstore.table import Table


@pytest.fixture
def table() -> Table:
    return Table.from_arrays("t", {"x": np.arange(100, dtype=float)})


class TestLookupStore:
    def test_miss_then_hit(self, table):
        recycler = Recycler()
        predicate = Between("x", 10, 20)
        assert recycler.lookup(table, predicate) is None
        recycler.store(table, predicate, np.arange(10, 21))
        hit = recycler.lookup(table, predicate)
        np.testing.assert_array_equal(hit, np.arange(10, 21))
        assert recycler.stats.hits == 1 and recycler.stats.misses == 1

    def test_different_predicates_do_not_collide(self, table):
        recycler = Recycler()
        recycler.store(table, Between("x", 0, 1), np.array([0, 1]))
        assert recycler.lookup(table, Between("x", 0, 2)) is None

    def test_version_change_invalidates(self, table):
        recycler = Recycler()
        predicate = Between("x", 0, 5)
        recycler.store(table, predicate, np.arange(6))
        table.append_batch({"x": [3.0]})
        assert recycler.lookup(table, predicate) is None

    def test_store_overwrites_same_key(self, table):
        recycler = Recycler()
        predicate = Between("x", 0, 5)
        recycler.store(table, predicate, np.arange(3))
        recycler.store(table, predicate, np.arange(6))
        assert recycler.lookup(table, predicate).shape[0] == 6
        assert len(recycler) == 1


class TestEviction:
    def test_lru_eviction_under_pressure(self, table):
        recycler = Recycler(capacity_bytes=3 * 80)  # three 10-int entries
        predicates = [Between("x", i, i + 9) for i in range(5)]
        for p in predicates:
            recycler.store(table, p, np.arange(10))
        assert len(recycler) <= 3
        assert recycler.stats.evictions >= 2
        # the most recent entry must still be present
        assert recycler.lookup(table, predicates[-1]) is not None

    def test_lookup_refreshes_lru_position(self, table):
        recycler = Recycler(capacity_bytes=2 * 80)
        a, b, c = (Between("x", i, i + 1) for i in range(3))
        recycler.store(table, a, np.arange(10))
        recycler.store(table, b, np.arange(10))
        recycler.lookup(table, a)  # refresh a; b becomes LRU
        recycler.store(table, c, np.arange(10))
        assert recycler.lookup(table, a) is not None
        assert recycler.lookup(table, b) is None

    def test_oversized_entry_not_stored(self, table):
        recycler = Recycler(capacity_bytes=8)
        recycler.store(table, Between("x", 0, 50), np.arange(51))
        assert len(recycler) == 0

    def test_invalid_capacity(self):
        with pytest.raises(ValueError, match="positive"):
            Recycler(capacity_bytes=0)

    def test_clear_keeps_counters(self, table):
        recycler = Recycler()
        recycler.store(table, Between("x", 0, 1), np.array([0]))
        recycler.lookup(table, Between("x", 0, 1))
        recycler.clear()
        assert len(recycler) == 0 and recycler.size_bytes == 0
        assert recycler.stats.hits == 1

    def test_hit_rate(self, table):
        recycler = Recycler()
        predicate = Between("x", 0, 1)
        recycler.lookup(table, predicate)
        recycler.store(table, predicate, np.array([0]))
        recycler.lookup(table, predicate)
        assert recycler.stats.hit_rate == pytest.approx(0.5)


class TestOversizeRejection:
    def test_oversize_entry_is_counted_not_silently_dropped(self, table):
        recycler = Recycler(capacity_bytes=64)
        predicate = Between("x", 0, 99)
        oversize = np.arange(100)  # 800 bytes > 64-byte budget
        recycler.store(table, predicate, oversize)
        # regression: the drop used to be invisible in the stats
        assert recycler.stats.rejected == 1
        assert recycler.stats.stored == 0
        assert len(recycler) == 0 and recycler.size_bytes == 0
        assert recycler.lookup(table, predicate) is None

    def test_fitting_entries_are_never_rejected(self, table):
        recycler = Recycler(capacity_bytes=1024)
        recycler.store(table, Between("x", 0, 5), np.arange(6))
        assert recycler.stats.rejected == 0
        assert recycler.stats.stored == 1
