"""Tests for predicate-set extraction."""

import numpy as np
import pytest

from repro.columnstore.expressions import Between, RadialPredicate, col_eq
from repro.columnstore.query import Query
from repro.workload.predicates import PredicateSetCollector


def cone(ra: float, dec: float) -> Query:
    return Query(table="t", predicate=RadialPredicate("ra", "dec", ra, dec, 2.0))


class TestCollection:
    def test_whitelisted_attributes_only(self):
        collector = PredicateSetCollector(("ra", "dec"))
        collector.observe(
            Query(
                table="t",
                predicate=RadialPredicate("ra", "dec", 185, 0, 2)
                & col_eq("metadata_flag", 7),
            )
        )
        np.testing.assert_array_equal(collector.values("ra"), [185.0])
        np.testing.assert_array_equal(collector.values("dec"), [0.0])
        with pytest.raises(KeyError, match="not a collected attribute"):
            collector.values("metadata_flag")

    def test_accumulates_across_queries(self):
        collector = PredicateSetCollector(("ra",))
        for ra in (150.0, 151.0, 152.0):
            collector.observe(cone(ra, 0.0))
        np.testing.assert_array_equal(collector.values("ra"), [150, 151, 152])
        assert collector.predicate_set_size("ra") == 3
        assert collector.queries_observed == 3

    def test_observe_returns_extracted(self):
        collector = PredicateSetCollector(("ra",))
        extracted = collector.observe(cone(185.0, 0.0))
        assert list(extracted) == ["ra"]

    def test_queries_without_interesting_predicates(self):
        collector = PredicateSetCollector(("ra",))
        collector.observe(Query(table="t", predicate=Between("mjd", 0, 1)))
        assert collector.predicate_set_size("ra") == 0

    def test_observe_all(self, workload):
        collector = PredicateSetCollector(("ra", "dec"))
        collector.observe_all(workload.queries(50))
        assert collector.queries_observed == 50
        assert collector.predicate_set_size("ra") > 0

    def test_requires_attributes(self):
        with pytest.raises(ValueError, match="at least one"):
            PredicateSetCollector(())


class TestConsumers:
    def test_consumers_see_each_extraction(self):
        collector = PredicateSetCollector(("ra",))
        seen = []
        collector.subscribe(lambda attr, values: seen.append((attr, values.tolist())))
        collector.observe(cone(185.0, 0.0))
        assert seen == [("ra", [185.0])]

    def test_clear_resets_values_not_consumers(self):
        collector = PredicateSetCollector(("ra",))
        seen = []
        collector.subscribe(lambda attr, values: seen.append(attr))
        collector.observe(cone(1.0, 0.0))
        collector.clear()
        assert collector.predicate_set_size("ra") == 0
        collector.observe(cone(2.0, 0.0))
        assert seen == ["ra", "ra"]
