"""Tests for impression hierarchies."""

import numpy as np
import pytest

from repro.columnstore.query import AggregateSpec, Query
from repro.columnstore.table import Table
from repro.core.hierarchy import ImpressionHierarchy
from repro.core.impression import Impression
from repro.errors import ImpressionError
from repro.sampling.reservoir import ReservoirR


@pytest.fixture
def base() -> Table:
    return Table.from_arrays(
        "base", {"id": np.arange(10_000), "x": np.zeros(10_000)}
    )


def make_layer(capacity: int, base: Table, seed: int, columns=None) -> Impression:
    sampler = ReservoirR(capacity, rng=seed)
    sampler.offer_batch(np.arange(base.num_rows))
    return Impression(f"base/L{capacity}", "base", sampler, columns=columns)


@pytest.fixture
def hierarchy(base) -> ImpressionHierarchy:
    layers = [make_layer(c, base, i) for i, c in enumerate((1000, 100, 10))]
    return ImpressionHierarchy("base/h", "base", layers)


class TestConstruction:
    def test_layers_ordered_and_indexed(self, hierarchy):
        assert hierarchy.depth == 3
        assert [l.capacity for l in hierarchy.layers] == [1000, 100, 10]
        assert [l.layer for l in hierarchy.layers] == [0, 1, 2]

    def test_requires_layers(self):
        with pytest.raises(ImpressionError, match="at least one"):
            ImpressionHierarchy("h", "base", [])

    def test_rejects_non_decreasing_capacities(self, base):
        layers = [make_layer(100, base, 0), make_layer(100, base, 1)]
        with pytest.raises(ImpressionError, match="strictly decrease"):
            ImpressionHierarchy("h", "base", layers)

    def test_rejects_foreign_layers(self, base):
        stranger = Impression("other/L0", "other", ReservoirR(10, rng=0))
        with pytest.raises(ImpressionError, match="samples"):
            ImpressionHierarchy("h", "base", [stranger])


class TestIteration:
    def test_from_smallest(self, hierarchy):
        sizes = [l.capacity for l in hierarchy.from_smallest()]
        assert sizes == [10, 100, 1000]

    def test_from_largest(self, hierarchy):
        sizes = [l.capacity for l in hierarchy.from_largest()]
        assert sizes == [1000, 100, 10]

    def test_layer_lookup(self, hierarchy):
        assert hierarchy.layer(0).capacity == 1000
        with pytest.raises(ImpressionError, match="no layer"):
            hierarchy.layer(5)


class TestCandidates:
    def test_all_layers_for_full_columns(self, hierarchy, base):
        q = Query(table="base", aggregates=[AggregateSpec("avg", "x")])
        candidates = hierarchy.candidates_for(q, base)
        assert [c.capacity for c in candidates] == [10, 100, 1000]

    def test_column_subset_layers_excluded(self, base):
        layers = [
            make_layer(1000, base, 0),
            make_layer(100, base, 1, columns=("id",)),  # no 'x'
        ]
        hierarchy = ImpressionHierarchy("h", "base", layers)
        q = Query(table="base", aggregates=[AggregateSpec("avg", "x")])
        candidates = hierarchy.candidates_for(q, base)
        assert [c.capacity for c in candidates] == [1000]


class TestBudgetSelection:
    def test_largest_within_cost(self, hierarchy):
        assert hierarchy.largest_within_cost(5000).capacity == 1000
        assert hierarchy.largest_within_cost(500).capacity == 100
        assert hierarchy.largest_within_cost(50).capacity == 10

    def test_nothing_fits(self, hierarchy):
        assert hierarchy.largest_within_cost(5) is None

    def test_total_rows(self, hierarchy):
        assert hierarchy.total_rows() == 1110

    def test_describe_mentions_layers(self, hierarchy):
        text = hierarchy.describe()
        assert "layer 0" in text and "layer 2" in text
