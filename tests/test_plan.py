"""Tests for plan cost estimation."""

import pytest

from repro.columnstore import AggregateSpec, Executor, JoinSpec, Query
from repro.columnstore.expressions import Between
from repro.columnstore.plan import estimate_cost, explain
from repro.util.clock import CostClock


class TestEstimate:
    def test_selection_only_estimate_is_exact(self, small_catalog):
        q = Query(table="fact")
        estimate = estimate_cost(q, small_catalog)
        clock = CostClock()
        Executor(small_catalog, clock=clock).execute(q)
        assert estimate.total_cost == clock.now == 1000

    def test_estimate_is_upper_bound_with_default_selectivity(
        self, small_catalog
    ):
        q = Query(
            table="fact",
            predicate=Between("x", 9, 10),
            joins=[JoinSpec("dim", "grp", "grp")],
            aggregates=[AggregateSpec("count")],
        )
        estimate = estimate_cost(q, small_catalog)
        clock = CostClock()
        Executor(small_catalog, clock=clock).execute(q)
        assert estimate.total_cost >= clock.now

    def test_selectivity_scales_downstream_steps(self, small_catalog):
        q = Query(
            table="fact",
            predicate=Between("x", 9, 10),
            aggregates=[AggregateSpec("count")],
        )
        full = estimate_cost(q, small_catalog, selectivity=1.0)
        tenth = estimate_cost(q, small_catalog, selectivity=0.1)
        assert tenth.total_cost < full.total_cost
        # the scan step itself is not scaled (it always reads the table)
        assert tenth.steps[0].estimated_cost == full.steps[0].estimated_cost

    def test_fact_table_override(self, small_catalog):
        q = Query(table="fact")
        sample = small_catalog.table("fact").take(range(10), "s")
        estimate = estimate_cost(q, small_catalog, fact_table=sample)
        assert estimate.total_cost == 10

    def test_invalid_selectivity(self, small_catalog):
        with pytest.raises(ValueError, match="selectivity"):
            estimate_cost(Query(table="fact"), small_catalog, selectivity=2.0)

    def test_limit_step_bounded_by_limit(self, small_catalog):
        q = Query(table="fact", limit=7)
        estimate = estimate_cost(q, small_catalog)
        assert estimate.steps[-1].estimated_cost == 7


class TestExplain:
    def test_mentions_query_and_steps(self, small_catalog):
        q = Query(
            table="fact",
            joins=[JoinSpec("dim", "grp", "grp")],
            aggregates=[AggregateSpec("count")],
            order_by="count(*)",
        )
        text = explain(q, small_catalog)
        assert "query:" in text
        for op in ("select", "join", "aggregate", "sort"):
            assert op in text
