"""Delta escalation: pay only for the rows each rung adds.

Covers the mergeable aggregate states (:mod:`repro.columnstore.
aggstate`), the impression-level delta/complement machinery, and the
bounded processor's incremental ladder: merged delta states must equal
from-scratch recomputation, the execution context must be charged only
delta rows on nested ladders, and non-nested hierarchies must fall
back to from-scratch scans with identical results.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.columnstore.aggstate import (
    FOLDABLE_FUNCTIONS,
    AggState,
    FoldState,
    GroupedAggState,
)
from repro.columnstore.catalog import Catalog
from repro.columnstore.column import Column
from repro.columnstore.expressions import Between, TruePredicate
from repro.columnstore.query import AggregateSpec, Query
from repro.columnstore.table import Table
from repro.core.bounded import BoundedQueryProcessor, QualityContract
from repro.core.impression import PI_COLUMN
from repro.core.maintenance import rebuild_from_base, refresh_hierarchy
from repro.core.policy import BiasedPolicy, UniformPolicy, build_hierarchy
from repro.errors import ImpressionError, QueryError
from repro.workload.interest import InterestModel


# ----------------------------------------------------------------------
# mergeable moment states
# ----------------------------------------------------------------------
values_arrays = st.lists(
    st.floats(
        min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
    ),
    min_size=0,
    max_size=60,
)


class TestAggState:
    @given(values=values_arrays, split=st.integers(min_value=0, max_value=60))
    @settings(max_examples=80, deadline=None)
    def test_merge_equals_from_scratch(self, values, split):
        arr = np.asarray(values, dtype=np.float64)
        split = min(split, arr.shape[0])
        merged = AggState.from_values(arr[:split]).merge(
            AggState.from_values(arr[split:])
        )
        whole = AggState.from_values(arr)
        for fn in FOLDABLE_FUNCTIONS:
            a, b = merged.value(fn), whole.value(fn)
            if np.isnan(a) or np.isnan(b):
                assert np.isnan(a) and np.isnan(b)
            else:
                assert a == pytest.approx(b, rel=1e-9, abs=1e-6), fn

    def test_matches_operator_semantics(self):
        from repro.columnstore import operators

        arr = np.array([3.0, 1.0, 4.0, 1.5])
        state = AggState.from_values(arr)
        for fn in ("sum", "avg", "min", "max", "var", "std"):
            assert state.value(fn) == operators._aggregate_array(
                fn, arr, arr.shape[0]
            )

    def test_empty_state_semantics(self):
        empty = AggState()
        assert empty.value("count") == 0.0
        assert np.isnan(empty.value("sum"))
        assert empty.merge(AggState.from_values(np.array([2.0]))).count == 1

    def test_variance_stable_for_large_means(self):
        """Regression: the naive raw-moment variance (Σv² − n·mean²)
        cancels catastrophically for large means; the centred
        Welford/Chan form must agree with numpy's two-pass variance."""
        rng = np.random.default_rng(3)
        values = 1e8 + rng.normal(0.0, 1.0, 10_000)
        expected = float(values.var(ddof=1))
        whole = AggState.from_values(values)
        assert whole.value("var") == pytest.approx(expected, rel=1e-9)
        merged = AggState.from_values(values[:3_333]).merge(
            AggState.from_values(values[3_333:])
        )
        assert merged.value("var") == pytest.approx(expected, rel=1e-9)
        assert whole.sumsq == pytest.approx(
            float((values * values).sum()), rel=1e-12
        )

    def test_singleton_var_is_zero(self):
        assert AggState.from_values(np.array([5.0])).value("var") == 0.0
        assert AggState.from_values(np.array([5.0])).value("std") == 0.0

    def test_unknown_aggregate_rejected(self):
        with pytest.raises(QueryError):
            AggState.from_values(np.array([1.0])).value("median")


class TestGroupedAggState:
    @given(
        keys=st.lists(st.integers(min_value=0, max_value=4), min_size=0, max_size=50),
        split=st.integers(min_value=0, max_value=50),
    )
    @settings(max_examples=60, deadline=None)
    def test_merge_equals_from_scratch(self, keys, split):
        rng = np.random.default_rng(len(keys) * 31 + split)
        keys = np.asarray(keys, dtype=np.int64)
        vals = rng.normal(10.0, 3.0, keys.shape[0])
        split = min(split, keys.shape[0])

        def build(sl):
            return GroupedAggState.from_arrays(
                ("g",), {"g": keys[sl]}, {"v": vals[sl]}
            )

        merged = build(slice(0, split)).merge(build(slice(split, None)))
        whole = build(slice(None))
        assert merged.counts == whole.counts
        assert merged.keys_sorted() == whole.keys_sorted()
        for key in whole.keys_sorted():
            for fn in FOLDABLE_FUNCTIONS:
                column = None if fn == "count" else "v"
                assert merged.value(fn, column, key) == pytest.approx(
                    whole.value(fn, column, key), rel=1e-9, abs=1e-9
                )

    def test_mismatched_keys_rejected(self):
        a = GroupedAggState.from_arrays(("g",), {"g": np.array([1])}, {})
        b = GroupedAggState.from_arrays(("h",), {"h": np.array([1])}, {})
        with pytest.raises(QueryError):
            a.merge(b)


class TestFoldState:
    def test_fold_keeps_sorted_invariant(self):
        a = FoldState.from_scan(
            np.array([7, 2, 9]), {"v": np.array([70.0, 20.0, 90.0])}, 10
        )
        b = FoldState.from_scan(
            np.array([5, 1]), {"v": np.array([50.0, 10.0])}, 4
        )
        merged = a.fold(b)
        np.testing.assert_array_equal(merged.row_ids, [1, 2, 5, 7, 9])
        np.testing.assert_array_equal(
            merged.columns["v"], [10.0, 20.0, 50.0, 70.0, 90.0]
        )
        assert merged.scanned_rows == 14
        assert merged.matched == 5

    def test_fold_rejects_mismatched_columns(self):
        a = FoldState.from_scan(np.array([1]), {"v": np.array([1.0])}, 1)
        b = FoldState.from_scan(np.array([2]), {"w": np.array([2.0])}, 1)
        with pytest.raises(QueryError):
            a.fold(b)

    def test_agg_state_round_trip(self):
        fold = FoldState.from_scan(
            np.array([3, 1, 2]), {"v": np.array([30.0, 10.0, 20.0])}, 3
        )
        assert fold.agg_state("v").value("sum") == 60.0
        grouped = FoldState.from_scan(
            np.array([0, 1, 2]),
            {"g": np.array([1, 1, 2]), "v": np.array([1.0, 3.0, 5.0])},
            3,
        ).grouped_state(("g",), ("v",))
        assert grouped.value("avg", "v", (1,)) == 2.0
        assert grouped.value("count", None, (2,)) == 1.0


# ----------------------------------------------------------------------
# impression-level deltas
# ----------------------------------------------------------------------
def _nested_setup(n=6_000, layer_sizes=(3_000, 1_500, 700), seed=11):
    rng = np.random.default_rng(seed)
    catalog = Catalog()
    catalog.add_table(
        Table(
            "T",
            [
                Column("x", "float64", rng.uniform(0.0, 100.0, n)),
                Column("v", "float64", rng.lognormal(1.0, 0.5, n)),
                Column("g", "int64", rng.integers(0, 4, n)),
            ],
        )
    )
    base = catalog.table("T")
    hierarchy = build_hierarchy(
        "T", UniformPolicy(layer_sizes=layer_sizes), rng=seed + 1
    )
    rebuild_from_base(hierarchy, base)
    refresh_hierarchy(hierarchy, base)  # makes upper layers nested
    return catalog, base, hierarchy


class TestImpressionDeltas:
    def test_nested_delta_is_exact_set_difference(self):
        _, _, hierarchy = _nested_setup()
        small, large = hierarchy.layer(2), hierarchy.layer(1)
        delta = large.delta_row_ids(small)
        assert delta is not None
        assert np.all(np.diff(delta) > 0)  # sorted, unique
        expected = np.setdiff1d(large.row_ids, small.row_ids)
        np.testing.assert_array_equal(delta, expected)
        assert set(small.row_ids) | set(delta) == set(large.row_ids)

    def test_non_nested_returns_none(self):
        catalog, base, _ = _nested_setup()
        independent = build_hierarchy(
            "T", UniformPolicy(layer_sizes=(3_000, 700)), rng=99
        )
        rebuild_from_base(independent, base)  # layers sampled independently
        small, large = independent.layer(1), independent.layer(0)
        assert large.delta_row_ids(small) is None
        assert not independent.is_nested()

    def test_hierarchy_escalation_deltas(self):
        _, _, hierarchy = _nested_setup()
        deltas = hierarchy.escalation_deltas()
        sizes = [imp.size for imp in hierarchy.from_smallest()]
        assert deltas[0] == sizes[0]
        assert all(d is not None for d in deltas)
        assert hierarchy.is_nested()
        for k in range(1, len(sizes)):
            assert deltas[k] == sizes[k] - sizes[k - 1]

    def test_materialise_delta_carries_current_pis(self):
        catalog, base, hierarchy = _nested_setup()
        small, large = hierarchy.layer(2), hierarchy.layer(1)
        delta_ids, delta_table = large.materialise_delta(base, small)
        delta = large.delta_row_ids(small)
        np.testing.assert_array_equal(delta_ids, delta)
        assert delta_table.num_rows == delta.shape[0]
        np.testing.assert_array_equal(delta_table["x"], base["x"][delta])
        expected_pis = large.inclusion_probabilities()[
            large.positions_of(delta)
        ]
        np.testing.assert_array_equal(delta_table[PI_COLUMN], expected_pis)

    def test_complement_partitions_base(self):
        catalog, base, hierarchy = _nested_setup()
        top = hierarchy.layer(0)
        complement = top.complement_row_ids(base)
        assert complement.shape[0] == base.num_rows - top.size
        assert np.intersect1d(complement, top.row_ids).size == 0
        ids, table = top.materialise_complement(base)
        np.testing.assert_array_equal(ids, complement)
        assert table.num_rows == complement.shape[0]
        np.testing.assert_array_equal(table["v"], base["v"][complement])

    def test_positions_of_rejects_foreign_rows(self):
        _, _, hierarchy = _nested_setup()
        small = hierarchy.layer(2)
        missing = np.setdiff1d(
            np.arange(10_000), small.row_ids
        )[:3]
        with pytest.raises(ImpressionError):
            small.positions_of(missing)

    def test_memory_bytes_is_analytic(self):
        catalog, base, hierarchy = _nested_setup()
        impression = hierarchy.layer(1)
        impression._invalidate()
        footprint = impression.memory_bytes(base)
        # analytic: no materialisation may have happened
        assert impression._cached is None
        assert footprint == impression.materialise(base).nbytes()
        assert footprint > 0


# ----------------------------------------------------------------------
# bounded execution: delta vs from-scratch recomputation
# ----------------------------------------------------------------------
def _assert_same_outcome(delta_outcome, scratch_outcome):
    assert len(delta_outcome.attempts) == len(scratch_outcome.attempts)
    for mine, theirs in zip(delta_outcome.attempts, scratch_outcome.attempts):
        assert mine.source == theirs.source
        assert mine.rows == theirs.rows
        assert mine.relative_error == theirs.relative_error
    a, b = delta_outcome.result, scratch_outcome.result
    assert a.exact == b.exact
    if a.estimates is not None:
        assert b.estimates is not None
        for name, estimate in a.estimates.items():
            assert estimate.value == b.estimates[name].value
            assert estimate.se == b.estimates[name].se
    if a.groups is not None:
        assert b.groups is not None
        assert a.groups.column_names == b.groups.column_names
        for name in a.groups.column_names:
            np.testing.assert_array_equal(a.groups[name], b.groups[name])
    if a.group_estimates is not None:
        for name, estimates in a.group_estimates.items():
            for mine, theirs in zip(estimates, b.group_estimates[name]):
                assert mine.value == theirs.value
                assert mine.se == theirs.se


def _random_query(rng) -> Query:
    if rng.random() < 0.3:
        predicate = TruePredicate()
    else:
        lo = float(rng.uniform(0, 80))
        predicate = Between("x", lo, lo + float(rng.uniform(5, 40)))
    fns = list(rng.choice(FOLDABLE_FUNCTIONS, size=rng.integers(1, 3), replace=False))
    aggregates = [
        AggregateSpec(fn, None if fn == "count" else "v") for fn in fns
    ]
    group_by = ("g",) if rng.random() < 0.4 else ()
    return Query(
        table="T",
        predicate=predicate,
        aggregates=aggregates,
        group_by=group_by,
    )


class TestDeltaMatchesScratch:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_random_nested_ladders_and_queries(self, seed):
        """Property: on random nested reservoirs × random aggregate /
        group-by queries, the merged delta states reproduce from-scratch
        recomputation exactly, rung by rung."""
        rng = np.random.default_rng(seed)
        n = int(rng.integers(3_000, 6_000))
        l0 = int(rng.integers(n // 3, (3 * n) // 4))
        l1 = int(rng.integers(l0 // 4, l0 // 2))
        l2 = int(rng.integers(50, l1 // 2))
        catalog, base, hierarchy = _nested_setup(
            n=n, layer_sizes=(l0, l1, l2), seed=seed + 100
        )
        delta = BoundedQueryProcessor(catalog, hierarchy)
        scratch = BoundedQueryProcessor(
            catalog, hierarchy, delta_escalation=False
        )
        for _ in range(6):
            query = _random_query(rng)
            contract = QualityContract(max_relative_error=0.0)
            delta_ctx, scratch_ctx = delta.new_context(), scratch.new_context()
            delta_outcome = delta.execute(query, contract, context=delta_ctx)
            scratch_outcome = scratch.execute(query, contract, context=scratch_ctx)
            _assert_same_outcome(delta_outcome, scratch_outcome)
            assert delta_ctx.spent <= scratch_ctx.spent

    def test_biased_hierarchy_ht_reweighting(self):
        """The Horvitz–Thompson path: a biased (unequal-π) nested
        ladder must yield identical estimates, because the fold is
        re-weighted with each rung's own inclusion probabilities."""
        rng = np.random.default_rng(5)
        n = 6_000
        catalog = Catalog()
        catalog.add_table(
            Table(
                "T",
                [
                    Column("x", "float64", rng.uniform(0.0, 100.0, n)),
                    Column("v", "float64", rng.lognormal(1.0, 0.5, n)),
                    Column("g", "int64", rng.integers(0, 4, n)),
                ],
            )
        )
        base = catalog.table("T")
        interest = InterestModel({"x": (0.0, 100.0)})
        interest.observe_values("x", rng.uniform(20.0, 40.0, 500))
        hierarchy = build_hierarchy(
            "T", BiasedPolicy(interest, layer_sizes=(3_000, 1_200, 400)), rng=6
        )
        rebuild_from_base(hierarchy, base)
        refresh_hierarchy(hierarchy, base)
        assert hierarchy.is_nested()
        pis = hierarchy.layer(0).inclusion_probabilities()
        assert np.unique(pis).size > 1  # genuinely unequal weights
        delta = BoundedQueryProcessor(catalog, hierarchy)
        scratch = BoundedQueryProcessor(
            catalog, hierarchy, delta_escalation=False
        )
        query = Query(
            table="T",
            predicate=Between("x", 25.0, 35.0),
            aggregates=[AggregateSpec("avg", "v"), AggregateSpec("count")],
        )
        contract = QualityContract(max_relative_error=0.0)
        _assert_same_outcome(
            delta.execute(query, contract), scratch.execute(query, contract)
        )

    def test_non_nested_falls_back_to_scratch_with_same_results(self):
        """Independently-sampled layers are not nested: every
        impression rung must be scanned in full (delta_rows == rung
        size) yet results must match the scratch ladder exactly."""
        rng = np.random.default_rng(17)
        n = 5_000
        catalog = Catalog()
        catalog.add_table(
            Table(
                "T",
                [
                    Column("x", "float64", rng.uniform(0.0, 100.0, n)),
                    Column("v", "float64", rng.lognormal(1.0, 0.5, n)),
                    Column("g", "int64", rng.integers(0, 4, n)),
                ],
            )
        )
        base = catalog.table("T")
        hierarchy = build_hierarchy(
            "T", UniformPolicy(layer_sizes=(2_000, 800)), rng=18
        )
        rebuild_from_base(hierarchy, base)  # NOT refreshed: independent
        assert not hierarchy.is_nested()
        delta = BoundedQueryProcessor(catalog, hierarchy)
        scratch = BoundedQueryProcessor(
            catalog, hierarchy, delta_escalation=False
        )
        query = Query(
            table="T",
            predicate=Between("x", 10.0, 60.0),
            aggregates=[AggregateSpec("sum", "v")],
        )
        contract = QualityContract(max_relative_error=0.0)
        outcome = delta.execute(query, contract)
        _assert_same_outcome(outcome, scratch.execute(query, contract))
        # both impression rungs were scanned from scratch...
        assert outcome.attempts[0].delta_rows == hierarchy.layer(1).size
        assert outcome.attempts[1].delta_rows == hierarchy.layer(0).size
        # ...but the base rung still deltas against the largest layer
        assert (
            outcome.attempts[2].delta_rows
            == base.num_rows - hierarchy.layer(0).size
        )


class TestDeltaCharging:
    def test_context_charged_only_delta_rows(self):
        """Regression: across a nested escalation the context pays the
        entry rung once and then only each rung's delta (plus the final
        exact aggregation), never the cumulative rung sizes."""
        catalog, base, hierarchy = _nested_setup(
            n=6_000, layer_sizes=(3_000, 1_500, 700)
        )
        processor = BoundedQueryProcessor(catalog, hierarchy)
        query = Query(
            table="T",
            predicate=Between("x", 20.0, 45.0),
            aggregates=[AggregateSpec("count")],
        )
        context = processor.new_context()
        outcome = processor.execute(
            query, QualityContract(max_relative_error=0.0), context=context
        )
        sizes = [imp.size for imp in hierarchy.from_smallest()]
        expected_deltas = [
            sizes[0],
            sizes[1] - sizes[0],
            sizes[2] - sizes[1],
            base.num_rows - sizes[2],
        ]
        assert [a.delta_rows for a in outcome.attempts] == expected_deltas
        # impression rungs cost exactly their delta scan
        for attempt, delta_rows in zip(outcome.attempts[:-1], expected_deltas):
            assert attempt.cost == delta_rows
        # the exact rung adds the aggregation over all matching rows
        matched = int(
            np.count_nonzero((base["x"] >= 20.0) & (base["x"] <= 45.0))
        )
        assert outcome.attempts[-1].cost == expected_deltas[-1] + matched
        assert context.spent == sum(expected_deltas) + matched
        # the scratch ladder would have paid the cumulative sizes
        scratch_cost = sum(sizes) + base.num_rows + matched
        assert context.spent < scratch_cost

    def test_deeper_rung_reached_under_same_budget(self):
        """The point of the optimisation: a budget too small for the
        from-scratch ladder's base rung affords it via deltas."""
        catalog, base, hierarchy = _nested_setup(
            n=6_000, layer_sizes=(4_000, 2_000, 900)
        )
        query = Query(
            table="T",
            predicate=Between("x", 20.0, 45.0),
            aggregates=[AggregateSpec("count")],
        )
        budget = 1.35 * base.num_rows  # < scratch ladder total, > delta total
        contract = QualityContract(max_relative_error=0.0, time_budget=budget)
        delta = BoundedQueryProcessor(catalog, hierarchy)
        scratch = BoundedQueryProcessor(
            catalog, hierarchy, delta_escalation=False
        )
        delta_outcome = delta.execute(query, contract)
        scratch_outcome = scratch.execute(query, contract)
        assert delta_outcome.met_quality and delta_outcome.result.exact
        assert not scratch_outcome.met_quality
        assert len(delta_outcome.attempts) > len(scratch_outcome.attempts)

    def test_describe_surfaces_delta_rows(self):
        catalog, base, hierarchy = _nested_setup()
        processor = BoundedQueryProcessor(catalog, hierarchy)
        outcome = processor.execute(
            Query(
                table="T",
                predicate=Between("x", 30.0, 50.0),
                aggregates=[AggregateSpec("avg", "v")],
            ),
            QualityContract(max_relative_error=0.0),
        )
        text = outcome.describe()
        assert "(Δ)" in text and "scanned=" in text

    def test_row_queries_and_joins_not_folded(self):
        """Non-foldable query shapes keep the from-scratch ladder
        (delta_rows is None on every attempt)."""
        catalog, base, hierarchy = _nested_setup()
        processor = BoundedQueryProcessor(catalog, hierarchy)
        outcome = processor.execute(
            Query(table="T", predicate=Between("x", 0.0, 50.0), select=("x",)),
            QualityContract(max_relative_error=0.5),
        )
        assert all(a.delta_rows is None for a in outcome.attempts)
